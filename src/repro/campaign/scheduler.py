"""Async job scheduling over the campaign result cache.

This module is the enabling refactor behind ``repro-serve``: the
run-to-completion loop that used to live inside
:class:`~.engine.CampaignEngine` is restated as an asynchronous
:class:`JobScheduler` that both the batch CLI and the long-running
daemon drive through one code path.

A submitted :class:`~.spec.RunSpec` resolves in four tiers:

1. **cache** — a content-addressed record from any earlier run is
   returned immediately (optionally via a small in-memory LRU so a hot
   query-serving loop never touches the disk);
2. **journal** — a completed line from the campaign root's journal
   (the batch engine's resume tier, passed in by the caller);
3. **coalesce** — an identical spec already in flight joins the
   existing :class:`Job` instead of executing twice;
4. **schedule** — a fresh :class:`Job` is dispatched onto the worker
   pool (or the serial worker thread) with the engine's historical
   timeout / retry-with-backoff / quarantine semantics.

Every job transition is appended to a :class:`JobStore` — a JSONL log
that doubles as the per-job progress event stream.  Given a durable
store path, a restarted scheduler reloads terminal jobs for queries and
re-dispatches the in-flight tail, which is what lets a killed
``repro-serve`` daemon resume its backlog.  The simulator itself is
deterministic per seed, so records are bit-identical whether a job ran
serially, on a pool worker, or in a previous daemon incarnation.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from .cache import ResultCache
from .journal import Journal
from .runner import execute_run
from .spec import RunSpec

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
QUARANTINED = "quarantined"

#: States a job never leaves.
TERMINAL_STATES = (DONE, QUARANTINED)


def _pool_context():
    # fork is much cheaper than spawn and available everywhere we run
    # (Linux CI and dev boxes); fall back gracefully elsewhere.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _prewarm_noop() -> None:
    """Picklable no-op used to pre-spawn pool workers at daemon start."""


class Job:
    """One scheduled execution of a :class:`~.spec.RunSpec`.

    Carries the spec, the retry tally, the final record once terminal,
    and the transition/event history that ``GET /v1/jobs/<id>/events``
    streams as JSONL.
    """

    __slots__ = (
        "id", "spec", "key", "label", "state", "attempts",
        "lifecycle", "record", "events",
    )

    def __init__(self, job_id: str, spec: RunSpec, lifecycle: bool) -> None:
        self.id = job_id
        self.spec = spec
        self.key = spec.key
        self.label = spec.label()
        self.state = PENDING
        #: Failed executions so far (retry N is attempt N+1).
        self.attempts = 0
        self.lifecycle = lifecycle
        #: The final journal record, set when the job turns terminal.
        self.record: Optional[Dict[str, Any]] = None
        #: Transition history, oldest first (JSONL-ready dicts).
        self.events: List[Dict[str, Any]] = []

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_record: bool = True) -> Dict[str, Any]:
        """JSON-ready job view (the ``GET /v1/jobs/<id>`` payload)."""
        out: Dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "label": self.label,
            "state": self.state,
            "attempts": self.attempts,
            "lifecycle": self.lifecycle,
            "spec": self.spec.to_dict(),
            "events": list(self.events),
        }
        if include_record and self.record is not None:
            out["record"] = self.record
        return out


class Submission:
    """Outcome of one :meth:`JobScheduler.submit` call.

    Exactly one of :attr:`record` (a reuse tier answered) or :attr:`job`
    (scheduled or coalesced) is set; :attr:`source` names the tier:
    ``cache``, ``journal``, ``coalesced`` or ``scheduled``.
    """

    __slots__ = ("source", "record", "job")

    def __init__(
        self,
        source: str,
        record: Optional[Dict[str, Any]] = None,
        job: Optional[Job] = None,
    ) -> None:
        self.source = source
        self.record = record
        self.job = job

    @property
    def hit(self) -> bool:
        return self.record is not None


class JobStore:
    """Append-only JSONL log of job transitions (or in-memory when
    ``path`` is ``None``).

    Each line is one event: ``submitted`` carries the spec, terminal
    events carry the final record.  :meth:`load` replays the log into
    per-job folds so a restarted scheduler recovers both its backlog
    (non-terminal jobs) and its answer history (terminal jobs).
    """

    def __init__(self, path=None) -> None:
        self.path = Path(path) if path is not None else None

    def append(self, line: Dict[str, Any]) -> None:
        if self.path is None:
            return
        import json

        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(line, sort_keys=True)
        with self.path.open("a") as fh:
            fh.write(text + "\n")
            fh.flush()

    def load(self) -> List[Dict[str, Any]]:
        """All well-formed lines, oldest first; torn tails skipped."""
        if self.path is None:
            return []
        import json

        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        out: List[Dict[str, Any]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn final line: the daemon died mid-write
            if isinstance(data, dict) and data.get("id"):
                out.append(data)
        return out

    def clear(self) -> None:
        if self.path is not None:
            self.path.unlink(missing_ok=True)


def _hist_summary(values: List[float]) -> Dict[str, float]:
    """count/mean/max summary matching the metric histogram export."""
    if not values:
        return {"count": 0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": round(sum(values) / len(values), 6),
        "max": round(max(values), 6),
    }


def scheduler_status(root) -> Dict[str, Any]:
    """The ``scheduler`` status block, folded from durable state.

    Works without a live scheduler: replays the campaign root's
    ``jobs.jsonl`` transitions for per-state job counts and queue-delay
    / wall-time summaries, and the journal for the cache-hit ratio
    (``reused`` lines over all lines).  ``repro-campaign status --json``
    and the serve daemon's ``/v1/status`` both embed this (the daemon's
    live metric histograms carry the same numbers for its own lifetime).
    """
    store = JobStore(Path(root) / "jobs.jsonl")
    state_of: Dict[str, str] = {}
    prev_t: Dict[str, float] = {}
    first_t: Dict[str, float] = {}
    delays: List[float] = []
    walls: List[float] = []
    turnarounds: List[float] = []
    for line in store.load():
        job_id = line["id"]
        state_of[job_id] = line.get("state", PENDING)
        t = line.get("t")
        if not isinstance(t, (int, float)):
            continue
        first_t.setdefault(job_id, t)
        if line.get("event") == "dispatched" and job_id in prev_t:
            delays.append(max(0.0, t - prev_t[job_id]))
        if line.get("state") in TERMINAL_STATES:
            record = line.get("record")
            if isinstance(record, dict) and "wall_s" in record:
                walls.append(float(record["wall_s"]))
            turnarounds.append(max(0.0, t - first_t[job_id]))
        prev_t[job_id] = t
    counts = {PENDING: 0, RUNNING: 0, DONE: 0, QUARANTINED: 0}
    for state in state_of.values():
        counts[state] = counts.get(state, 0) + 1
    entries = list(Journal(Path(root) / "journal.jsonl").entries())
    reused = sum(1 for r in entries if r.get("reused"))
    return {
        "jobs": counts,
        "cache_hit_ratio": (
            round(reused / len(entries), 4) if entries else 0.0
        ),
        "queue_delay_s": _hist_summary(delays),
        "job_wall_s": _hist_summary(walls),
        "turnaround_s": _hist_summary(turnarounds),
    }


class JobScheduler:
    """Cache-aware async executor of RunSpecs with durable job state.

    The batch engine builds one per invocation (in-memory store), the
    serve daemon builds one for its whole lifetime (durable store).
    Thread-safe: ``submit``/``wait``/``job`` may be called from any
    number of threads (the HTTP handler pool).
    """

    def __init__(
        self,
        cache: ResultCache,
        journal: Journal,
        quarantine: Journal,
        store: Optional[JobStore] = None,
        workers: int = 1,
        use_cache: bool = True,
        trace: bool = False,
        timeout_s: Optional[float] = None,
        max_events: Optional[int] = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.25,
        lifecycle: bool = False,
        echo: Optional[Callable[[str], None]] = None,
        journal_reused: bool = True,
        memory_cache: int = 0,
        metrics: Optional[Any] = None,
        profile: bool = False,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s cannot be negative")
        if memory_cache < 0:
            raise ConfigurationError("memory_cache cannot be negative")
        self.cache = cache
        self.journal = journal
        self.quarantine = quarantine
        self.store = store if store is not None else JobStore(None)
        self.workers = workers
        self.use_cache = use_cache
        self.trace = trace
        self.timeout_s = timeout_s
        self.max_events = max_events
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.lifecycle = lifecycle
        self.echo = echo
        #: Append ``reused: true`` journal lines for reuse-tier answers
        #: (the batch engine's historical behaviour; the daemon disables
        #: it so a hot cache-hit loop never writes the journal).
        self.journal_reused = journal_reused
        #: In-memory LRU capacity over cache records (0 disables).
        self.memory_cache = memory_cache
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Optional :class:`~repro.telemetry.registry.MetricsRegistry`;
        #: when present the scheduler feeds per-job timing histograms
        #: (``scheduler.jobs.queue_delay_s``, ``scheduler.jobs.wall_s``)
        #: — the serve daemon passes its own registry here.
        self.metrics = metrics
        #: Attach a kernel profiler to every executed run (adds a
        #: ``perf`` summary to records; see :func:`~.runner.execute_run`
        #: for why this must stay off for cache-pure batch runs).
        self.profile = profile

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        #: In-flight (non-terminal) jobs by spec key — the coalesce map.
        self._inflight: Dict[str, Job] = {}
        self._next_id = 1
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pool_dead = False
        self._serial_queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._serial_thread: Optional[threading.Thread] = None
        self._timers: List[threading.Timer] = []
        self._closed = False
        #: Lifetime tallies (exported by the daemon's /v1/status).
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "cache_hits": 0,
            "journal_hits": 0,
            "coalesced": 0,
            "scheduled": 0,
            "executed": 0,
            "retried_ok": 0,
            "quarantined": 0,
            "resumed": 0,
        }
        self._restore()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def at(cls, root, durable: bool = True, **kwargs) -> "JobScheduler":
        """A scheduler owning the standard campaign-root file layout."""
        root = Path(root)
        return cls(
            cache=ResultCache(root / "cache"),
            journal=Journal(root / "journal.jsonl"),
            quarantine=Journal(root / "quarantine.jsonl"),
            store=JobStore(root / "jobs.jsonl") if durable else JobStore(None),
            **kwargs,
        )

    def _restore(self) -> None:
        """Replay the durable store: keep answers, re-queue the backlog."""
        folded: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        for line in self.store.load():
            job_id = line["id"]
            fold = folded.get(job_id)
            if fold is None:
                fold = folded[job_id] = {"events": []}
                order.append(job_id)
            if "spec" in line:
                fold["spec"] = line["spec"]
            if "lifecycle" in line:
                fold["lifecycle"] = line["lifecycle"]
            if "record" in line:
                fold["record"] = line["record"]
            event = dict(line)
            event.pop("record", None)
            fold["events"].append(event)
            fold["state"] = line.get("state", PENDING)
            fold["attempts"] = line.get("attempts", fold.get("attempts", 0))
        for job_id in order:
            fold = folded[job_id]
            spec_dict = fold.get("spec")
            if spec_dict is None:
                continue  # header line lost to a torn write: unrecoverable
            try:
                spec = RunSpec.from_dict(spec_dict)
            except (ConfigurationError, KeyError, TypeError, ValueError):
                continue  # spec predates a model change; drop it
            job = Job(job_id, spec, bool(fold.get("lifecycle", False)))
            job.events = fold["events"]
            job.attempts = int(fold.get("attempts", 0))
            state = fold.get("state", PENDING)
            if state in TERMINAL_STATES:
                job.state = state
                job.record = fold.get("record")
            else:
                # Non-terminal at the time the store went quiet: the
                # daemon died with this job in flight.  Requeue it.
                job.state = PENDING
                self._inflight[job.key] = job
                self.stats["resumed"] += 1
            self._jobs[job_id] = job
            try:
                self._next_id = max(self._next_id, int(job_id[1:]) + 1)
            except ValueError:
                pass

    # -- plumbing ------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(message)

    def _event(self, job: Job, event: str, **fields: Any) -> None:
        """Record one transition on the job and in the durable store."""
        line: Dict[str, Any] = {
            "id": job.id,
            "seq": len(job.events),
            "event": event,
            "state": job.state,
            "attempts": job.attempts,
            # Host wall time: service metadata, not simulated time.
            "t": round(time.time(), 6),  # repro-lint: disable=RPR001
        }
        record = fields.pop("record", None)
        line.update(fields)
        job.events.append(line)
        stored = dict(line)
        if event == "submitted":
            stored["spec"] = job.spec.to_dict()
            stored["lifecycle"] = job.lifecycle
        if record is not None:
            stored["record"] = record
        self.store.append(stored)
        self._cond.notify_all()

    # -- cache tiers ---------------------------------------------------------

    def _cached(self, key: str) -> Optional[Dict[str, Any]]:
        if self.memory_cache:
            record = self._memory.get(key)
            if record is not None:
                self._memory.move_to_end(key)
                return record
        record = self.cache.get(key)
        if record is not None:
            self._remember(key, record)
        return record

    def _remember(self, key: str, record: Dict[str, Any]) -> None:
        if not self.memory_cache:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_cache:
            self._memory.popitem(last=False)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        spec: RunSpec,
        force: bool = False,
        journaled: Optional[Dict[str, Dict[str, Any]]] = None,
        lifecycle: Optional[bool] = None,
    ) -> Submission:
        """Resolve one spec: reuse, coalesce, or schedule.

        ``journaled`` is the batch engine's resume tier (key -> completed
        record).  ``lifecycle`` overrides the scheduler default for this
        job only (the serve API's per-request ``lifecycle`` flag).
        """
        key = spec.key
        with self._lock:
            self.stats["submitted"] += 1
            if not force:
                if self.use_cache:
                    record = self._cached(key)
                    if record is not None:
                        self.stats["cache_hits"] += 1
                        if self.journal_reused:
                            self.journal.append(dict(record, reused=True))
                        self._say(f"hit  {record.get('label', key)}")
                        return Submission("cache", record=record)
                if journaled and key in journaled:
                    record = journaled[key]
                    self.stats["journal_hits"] += 1
                    if self.use_cache:
                        self.cache.put(key, record)
                        self._remember(key, record)
                    if self.journal_reused:
                        self.journal.append(dict(record, reused=True))
                    self._say(f"hit  {record.get('label', key)}")
                    return Submission("journal", record=record)
            job = self._inflight.get(key)
            if job is not None:
                self.stats["coalesced"] += 1
                return Submission("coalesced", job=job)
            job = Job(
                f"j{self._next_id}",
                spec,
                self.lifecycle if lifecycle is None else lifecycle,
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._inflight[key] = job
            self.stats["scheduled"] += 1
            self._event(job, "submitted")
            self._dispatch(job)
            return Submission("scheduled", job=job)

    def start(self) -> None:
        """Dispatch any backlog restored from a durable store.

        Fresh submissions dispatch themselves, so every job still
        ``pending`` here was in flight when a previous incarnation of
        the store went quiet.
        """
        with self._lock:
            backlog = [j for j in self._jobs.values() if j.state == PENDING]
        for job in sorted(backlog, key=lambda j: int(j.id[1:])):
            self._dispatch(job)

    def prewarm(self) -> None:
        """Pre-spawn pool workers so the first miss pays no fork cost."""
        with self._lock:
            executor = self._executor_or_none()
        if executor is not None:
            for _ in range(self.workers):
                executor.submit(_prewarm_noop)

    # -- execution -----------------------------------------------------------

    def _executor_or_none(self) -> Optional[ProcessPoolExecutor]:
        if self.workers <= 1 or self._pool_dead or self._closed:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context()
            )
        return self._executor

    def _dispatch(self, job: Job) -> None:
        """Hand one pending job to the pool (or the serial worker)."""
        with self._lock:
            if self._closed or job.done:
                return
            job.state = RUNNING
            self._event(job, "dispatched")
            if self.metrics is not None and len(job.events) >= 2:
                # Queue delay: from the preceding transition (submitted,
                # or retry_scheduled on a retry) to this dispatch.
                delay = job.events[-1]["t"] - job.events[-2]["t"]
                self.metrics.histogram(
                    "scheduler.jobs.queue_delay_s"
                ).observe(max(0.0, delay))
            executor = self._executor_or_none()
            if executor is not None:
                try:
                    future = executor.submit(
                        execute_run,
                        job.spec,
                        trace=self.trace,
                        timeout_s=self.timeout_s,
                        max_events=self.max_events,
                        lifecycle=job.lifecycle,
                        profile=self.profile,
                    )
                except Exception as exc:  # pool already broken
                    self._pool_failed(exc)
                    self._enqueue_serial(job)
                    return
                future.add_done_callback(
                    lambda fut, job_id=job.id: self._on_future(job_id, fut)
                )
            else:
                self._enqueue_serial(job)

    def _enqueue_serial(self, job: Job) -> None:
        with self._lock:
            if self._serial_thread is None:
                self._serial_thread = threading.Thread(
                    target=self._serial_loop,
                    name="repro-serve-serial",
                    daemon=True,
                )
                self._serial_thread.start()
            self._serial_queue.put(job.id)

    def _serial_loop(self) -> None:
        """The in-process fallback worker: one job at a time, FIFO."""
        while True:
            job_id = self._serial_queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
            if job is None or job.done:
                continue
            record = execute_run(
                job.spec,
                trace=self.trace,
                timeout_s=self.timeout_s,
                max_events=self.max_events,
                lifecycle=job.lifecycle,
                profile=self.profile,
            )
            self._complete(job_id, record)

    def _pool_failed(self, exc: BaseException) -> None:
        """The pool infrastructure died (not a run); go serial."""
        with self._lock:
            if self._pool_dead:
                return
            self._pool_dead = True
            executor, self._executor = self._executor, None
        self._say(
            f"worker pool failed ({type(exc).__name__}: {exc}); "
            f"finishing the remaining runs serially"
        )
        if executor is not None:
            executor.shutdown(wait=False)

    def _on_future(self, job_id: str, future) -> None:
        try:
            record = future.result()
        except Exception as exc:
            # execute_run never raises, so this is pool infrastructure
            # death (BrokenProcessPool & friends): re-run serially.
            self._pool_failed(exc)
            with self._lock:
                job = self._jobs.get(job_id)
            if job is not None and not job.done:
                self._enqueue_serial(job)
            return
        self._complete(job_id, record)

    # -- completion / retry / quarantine -------------------------------------

    def _complete(self, job_id: str, record: Dict[str, Any]) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.done:
                return
            attempt = job.attempts
            if attempt:
                record["retry"] = attempt
            self.stats["executed"] += 1
            ok = record.get("status") == "ok"
            if ok:
                if self.use_cache:
                    self.cache.put(job.key, record)
                    self._remember(job.key, record)
                if attempt:
                    self.stats["retried_ok"] += 1
            self.journal.append(record)
            status = "ok  " if ok else "FAIL"
            note = f" retry {attempt}/{self.max_retries}" if attempt else ""
            self._say(
                f"{status} {record.get('label', job.key)} "
                f"({record.get('wall_s', 0.0):.2f}s){note}"
            )
            if ok:
                self._finish(job, DONE, record)
                return
            job.attempts += 1
            if job.attempts <= self.max_retries:
                backoff = self.retry_backoff_s * (2 ** (job.attempts - 1))
                job.state = PENDING
                self._event(
                    job, "retry_scheduled",
                    error=record.get("error"), backoff_s=backoff,
                )
                self._say(
                    f"retrying {record.get('label', job.key)}, "
                    f"attempt {job.attempts}/{self.max_retries}"
                )
                if backoff > 0:
                    timer = threading.Timer(backoff, self._dispatch, (job,))
                    timer.daemon = True
                    self._timers.append(timer)
                    timer.start()
                else:
                    self._dispatch(job)
                return
            self.quarantine.append(record)
            self.stats["quarantined"] += 1
            self._say(f"QUARANTINED {record.get('label', job.key)}")
            self._finish(job, QUARANTINED, record)

    def _finish(self, job: Job, state: str, record: Dict[str, Any]) -> None:
        job.state = state
        job.record = record
        self._inflight.pop(job.key, None)
        self._event(
            job, state,
            status=record.get("status"),
            value=record.get("value"),
            elapsed_us=record.get("elapsed_us"),
            error=record.get("error"),
            record=record,
        )
        if self.metrics is not None:
            self.metrics.histogram("scheduler.jobs.wall_s").observe(
                float(record.get("wall_s", 0.0))
            )
            turnaround = job.events[-1]["t"] - job.events[0]["t"]
            self.metrics.histogram("scheduler.jobs.turnaround_s").observe(
                max(0.0, turnaround)
            )

    # -- queries and synchronization -----------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: int(j.id[1:]))

    def counts(self) -> Dict[str, int]:
        """Jobs per state (for status endpoints)."""
        out = {PENDING: 0, RUNNING: 0, DONE: 0, QUARANTINED: 0}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return out

    def wait(
        self,
        job_ids: Optional[Iterable[str]] = None,
        timeout_s: Optional[float] = None,
    ) -> bool:
        """Block until the named jobs (default: all) are terminal.

        Returns ``False`` on timeout.  Host wall time, naturally — this
        synchronizes the service, not the simulation.
        """
        wanted = None if job_ids is None else list(job_ids)
        deadline = (
            None if timeout_s is None
            else time.monotonic() + timeout_s  # repro-lint: disable=RPR001
        )
        with self._cond:
            while True:
                ids = wanted if wanted is not None else list(self._jobs)
                if all(
                    self._jobs[i].done for i in ids if i in self._jobs
                ):
                    return True
                remaining = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()  # repro-lint: disable=RPR001
                    if remaining <= 0:
                        return False
                self._cond.wait(min(remaining, 1.0))

    def wait_events(self, job_id: str, seen: int, timeout_s: float = 30.0) -> List[Dict[str, Any]]:
        """Events past index ``seen``, blocking briefly for new ones.

        The long-poll primitive behind the JSONL event stream: returns
        as soon as the job grows new events or turns terminal, or after
        ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s  # repro-lint: disable=RPR001
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return []
                if len(job.events) > seen or job.done:
                    return job.events[seen:]
                remaining = deadline - time.monotonic()  # repro-lint: disable=RPR001
                if remaining <= 0:
                    return []
                self._cond.wait(min(remaining, 1.0))

    def close(self, wait: bool = True) -> None:
        """Stop timers, the serial worker and the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            timers, self._timers = self._timers, []
            executor, self._executor = self._executor, None
            serial = self._serial_thread
        for timer in timers:
            timer.cancel()
        if serial is not None:
            self._serial_queue.put(None)
            if wait:
                serial.join(timeout=5.0)
        if executor is not None:
            executor.shutdown(wait=wait)
