"""``repro-campaign`` console script: run / status / clean.

``run`` executes a campaign described by a JSON spec file (see
EXPERIMENTS.md for the format), ``status`` summarizes a campaign root's
journal and cache, and ``clean`` deletes the cached results and journal.

Example spec file::

    {
      "name": "pingpong-sizes",
      "base": {"app": "pingpong", "nodes": 2},
      "grid": {"network": ["ib", "elan"],
               "app_args.size": [0, 1024, 65536]},
      "repetitions": 1,
      "seed_base": 0
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from .cache import ResultCache
from .engine import DEFAULT_ROOT, CampaignEngine
from .journal import Journal
from .spec import CampaignSpec


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default=DEFAULT_ROOT,
        help=f"campaign state directory (default: {DEFAULT_ROOT})",
    )


def cmd_run(args: argparse.Namespace) -> int:
    campaign = CampaignSpec.from_file(args.spec)
    engine = CampaignEngine(
        root=args.root,
        workers=args.workers,
        use_cache=not args.no_cache,
        resume=not args.force,
        trace=args.trace,
        echo=None if args.quiet else (lambda m: print(m, file=sys.stderr)),
        timeout_s=args.timeout,
        max_events=args.max_events,
        max_retries=args.max_retries,
        lifecycle=args.blame,
    )
    result = engine.run(campaign, force=args.force)
    print(result.summary())
    if args.values:
        metric_cols = args.metric or []
        for record in result.records:
            row = {
                "label": record.get("label"),
                "status": record.get("status"),
                "value": record.get("value"),
                "elapsed_us": record.get("elapsed_us"),
            }
            if args.blame and "blame" in record:
                row["blame"] = {
                    name: entry["share"]
                    for name, entry in record["blame"]["components"].items()
                }
            metrics = record.get("metrics") or {}
            for name in metric_cols:
                row[name] = metrics.get(name)
            print(json.dumps(row))
    return 1 if result.errors else 0


def cmd_status(args: argparse.Namespace) -> int:
    journal = Journal(f"{args.root}/journal.jsonl")
    quarantine = Journal(f"{args.root}/quarantine.jsonl")
    cache = ResultCache(f"{args.root}/cache")
    entries = list(journal.entries())
    ok = [r for r in entries if r.get("status") == "ok"]
    errors = [r for r in entries if r.get("status") == "error"]
    reused = [r for r in entries if r.get("reused")]
    distinct = {r.get("key") for r in ok}
    sim_wall = sum(r.get("wall_s", 0.0) for r in entries if not r.get("reused"))
    print(f"campaign root: {args.root}")
    print(
        f"journal: {len(entries)} records "
        f"({len(ok)} ok, {len(errors)} error, {len(reused)} reused), "
        f"{len(distinct)} distinct completed runs, "
        f"{sim_wall:.2f}s simulated wall time"
    )
    print(
        f"cache: {cache.count()} entries, "
        f"{cache.size_bytes() / 1024.0:.1f} KiB"
    )
    quarantined = list(quarantine.entries())
    if quarantined:
        print(f"quarantine: {len(quarantined)} specs failed all retries")
        for record in quarantined:
            print(
                f"  [quarantined] {record.get('label', record.get('key'))}: "
                f"{record.get('error', 'unknown error')}"
            )
    for record in journal.tail(args.tail):
        status = record.get("status", "?")
        flag = " (reused)" if record.get("reused") else ""
        print(f"  [{status}]{flag} {record.get('label', record.get('key'))}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(f"{args.root}/cache")
    journal = Journal(f"{args.root}/journal.jsonl")
    quarantine = Journal(f"{args.root}/quarantine.jsonl")
    removed = cache.clear()
    journal.clear()
    quarantine.clear()
    print(f"removed {removed} cache entries and the journals from {args.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel, cached, resumable experiment campaigns "
        "over the InfiniBand/Elan-4 simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign spec file")
    run.add_argument("spec", help="JSON campaign spec file")
    _add_root(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default 1 = serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="re-execute every run, ignoring cache and journal",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="run with tracing on and journal per-category record counts",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; a hung run fails with a "
        "WatchdogError naming the blocked ranks",
    )
    run.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run simulated-event budget (runaway-program guard)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="re-execute failed runs up to N times before quarantining",
    )
    run.add_argument(
        "--blame",
        action="store_true",
        help="collect lifecycle spans per run; records (and --values rows) "
        "gain a critical-path blame table plus occupancy series",
    )
    run.add_argument(
        "--values", action="store_true", help="print one JSON line per run"
    )
    run.add_argument(
        "--metric",
        action="append",
        metavar="NAME",
        help="with --values, add this telemetry metric as a column "
        "(repeatable; e.g. mvapich.reg_cache.misses)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    run.set_defaults(func=cmd_run)

    status = sub.add_parser("status", help="summarize journal and cache")
    _add_root(status)
    status.add_argument(
        "--tail", type=int, default=5, help="recent journal lines to show"
    )
    status.set_defaults(func=cmd_status)

    clean = sub.add_parser("clean", help="delete cached results and journal")
    _add_root(clean)
    clean.set_defaults(func=cmd_clean)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
