"""``repro-campaign`` console script: run / status / clean.

``run`` executes a campaign described by a JSON spec file (see
EXPERIMENTS.md for the format), ``status`` summarizes a campaign root's
journal and cache, and ``clean`` deletes the cached results and journal.

Example spec file::

    {
      "name": "pingpong-sizes",
      "base": {"app": "pingpong", "nodes": 2},
      "grid": {"network": ["ib", "elan"],
               "app_args.size": [0, 1024, 65536]},
      "repetitions": 1,
      "seed_base": 0
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from .cache import ResultCache
from .chaos import ChaosStudy
from .engine import DEFAULT_ROOT, CampaignEngine
from .journal import Journal
from .scheduler import scheduler_status
from .spec import CampaignSpec


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root",
        default=DEFAULT_ROOT,
        help=f"campaign state directory (default: {DEFAULT_ROOT})",
    )


def cmd_run(args: argparse.Namespace) -> int:
    campaign = CampaignSpec.from_file(args.spec)
    engine = CampaignEngine(
        root=args.root,
        workers=args.workers,
        use_cache=not args.no_cache,
        resume=not args.force,
        trace=args.trace,
        echo=None if args.quiet else (lambda m: print(m, file=sys.stderr)),
        timeout_s=args.timeout,
        max_events=args.max_events,
        max_retries=args.max_retries,
        lifecycle=args.blame,
    )
    result = engine.run(campaign, force=args.force)
    print(result.summary())
    if args.values:
        metric_cols = args.metric or []
        for record in result.records:
            row = {
                "label": record.get("label"),
                "status": record.get("status"),
                "value": record.get("value"),
                "elapsed_us": record.get("elapsed_us"),
            }
            if args.blame and "blame" in record:
                row["blame"] = {
                    name: entry["share"]
                    for name, entry in record["blame"]["components"].items()
                }
            metrics = record.get("metrics") or {}
            for name in metric_cols:
                row[name] = metrics.get(name)
            print(json.dumps(row))
    return 1 if result.errors else 0


def status_payload(root, tail: int = 5) -> dict:
    """Machine-readable campaign-root status.

    The single source of truth for campaign-state reporting: the
    human-readable ``repro-campaign status`` text, its ``--json`` mode
    and the serve daemon's ``GET /v1/status`` all render this dict.
    """
    journal = Journal(f"{root}/journal.jsonl")
    quarantine = Journal(f"{root}/quarantine.jsonl")
    cache = ResultCache(f"{root}/cache")
    entries = list(journal.entries())
    ok = [r for r in entries if r.get("status") == "ok"]
    errors = [r for r in entries if r.get("status") == "error"]
    reused = [r for r in entries if r.get("reused")]
    distinct = {r.get("key") for r in ok}
    sim_wall = sum(r.get("wall_s", 0.0) for r in entries if not r.get("reused"))
    quarantined = []
    for record in quarantine.entries():
        entry = {
            "label": record.get("label", record.get("key")),
            "key": record.get("key"),
            "error": record.get("error", "unknown error"),
        }
        # The reason, not just the count: surfaced exception first, then
        # the root cause dug out of the __cause__ chain when it differs
        # (e.g. "LinkDeadError" under a process crash).
        cause = record.get("error_cause")
        if cause and cause != entry["error"]:
            entry["root_cause"] = cause
        quarantined.append(entry)
    recent = []
    for record in journal.tail(tail):
        entry = {
            "status": record.get("status", "?"),
            "reused": bool(record.get("reused")),
            "label": record.get("label", record.get("key")),
            "key": record.get("key"),
        }
        if entry["status"] == "error":
            reason = record.get("error_cause") or record.get("error")
            if reason:
                entry["reason"] = reason
        recent.append(entry)
    return {
        "root": str(root),
        "journal": {
            "records": len(entries),
            "ok": len(ok),
            "error": len(errors),
            "reused": len(reused),
            "distinct_completed": len(distinct),
            "simulated_wall_s": round(sim_wall, 6),
        },
        "cache": {
            "entries": cache.count(),
            "size_bytes": cache.size_bytes(),
        },
        # Async-scheduler view of the same root: per-state job counts
        # and timing summaries folded from jobs.jsonl (empty-shaped when
        # the root has only ever seen batch runs).
        "scheduler": scheduler_status(root),
        "quarantine": quarantined,
        "recent": recent,
    }


def render_status(payload: dict) -> str:
    """The historical human-readable status text, from the payload."""
    journal = payload["journal"]
    lines = [
        f"campaign root: {payload['root']}",
        f"journal: {journal['records']} records "
        f"({journal['ok']} ok, {journal['error']} error, "
        f"{journal['reused']} reused), "
        f"{journal['distinct_completed']} distinct completed runs, "
        f"{journal['simulated_wall_s']:.2f}s simulated wall time",
        f"cache: {payload['cache']['entries']} entries, "
        f"{payload['cache']['size_bytes'] / 1024.0:.1f} KiB",
    ]
    sched = payload.get("scheduler") or {}
    jobs = sched.get("jobs") or {}
    if sum(count for _, count in sorted(jobs.items())):
        by_state = ", ".join(
            f"{count} {state}" for state, count in sorted(jobs.items()) if count
        )
        lines.append(
            f"scheduler: {by_state}; "
            f"cache-hit ratio {sched['cache_hit_ratio']:.2f}, "
            f"mean queue delay {sched['queue_delay_s']['mean'] * 1e3:.1f} ms, "
            f"mean job wall {sched['job_wall_s']['mean']:.2f}s"
        )
    if payload["quarantine"]:
        lines.append(
            f"quarantine: {len(payload['quarantine'])} specs failed all retries"
        )
        for entry in payload["quarantine"]:
            lines.append(f"  [quarantined] {entry['label']}")
            lines.append(f"    error: {entry['error']}")
            if entry.get("root_cause"):
                lines.append(f"    root cause: {entry['root_cause']}")
    for entry in payload["recent"]:
        flag = " (reused)" if entry["reused"] else ""
        lines.append(f"  [{entry['status']}]{flag} {entry['label']}")
        if entry.get("reason"):
            lines.append(f"      {entry['reason']}")
    return "\n".join(lines)


def cmd_status(args: argparse.Namespace) -> int:
    payload = status_payload(args.root, tail=args.tail)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(render_status(payload))
    return 0


def _coerce(text: str):
    """CLI value -> JSON scalar: int, float, bool or string."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _pairs(items) -> dict:
    """Parse repeated ``key=value`` options into a dict."""
    out = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ReproError(f"expected key=value, got {item!r}")
        out[key] = _coerce(value)
    return out


def cmd_chaos(args: argparse.Namespace) -> int:
    study = ChaosStudy(
        app=args.app,
        app_args=_pairs(args.arg),
        nodes=args.nodes,
        ppn=args.ppn,
        topology=_pairs(args.topology),
        networks=tuple(args.network or ("ib", "elan")),
        kill_links=tuple(args.link or ()),
        fractions=tuple(args.at or (0.25, 0.5, 0.75)),
        seed=args.seed,
        fault_knobs=_pairs(args.fault),
    )
    engine = CampaignEngine(
        root=args.root,
        workers=args.workers,
        echo=None if args.quiet else (lambda m: print(m, file=sys.stderr)),
        timeout_s=args.timeout,
        max_events=args.max_events,
    )
    result = study.run(engine)
    print(result.summary())
    if args.json:
        print(json.dumps(result.to_dict()))
    # Survivable-or-structurally-reported cells are the study's point;
    # only an *unexpected* failure (crash, watchdog, deadlock) is an
    # error exit.
    return 1 if result.failures() else 0


def cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(f"{args.root}/cache")
    journal = Journal(f"{args.root}/journal.jsonl")
    quarantine = Journal(f"{args.root}/quarantine.jsonl")
    removed = cache.clear()
    journal.clear()
    quarantine.clear()
    print(f"removed {removed} cache entries and the journals from {args.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Parallel, cached, resumable experiment campaigns "
        "over the InfiniBand/Elan-4 simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign spec file")
    run.add_argument("spec", help="JSON campaign spec file")
    _add_root(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default 1 = serial)",
    )
    run.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="re-execute every run, ignoring cache and journal",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="run with tracing on and journal per-category record counts",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; a hung run fails with a "
        "WatchdogError naming the blocked ranks",
    )
    run.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run simulated-event budget (runaway-program guard)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="re-execute failed runs up to N times before quarantining",
    )
    run.add_argument(
        "--blame",
        action="store_true",
        help="collect lifecycle spans per run; records (and --values rows) "
        "gain a critical-path blame table plus occupancy series",
    )
    run.add_argument(
        "--values", action="store_true", help="print one JSON line per run"
    )
    run.add_argument(
        "--metric",
        action="append",
        metavar="NAME",
        help="with --values, add this telemetry metric as a column "
        "(repeatable; e.g. mvapich.reg_cache.misses)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    run.set_defaults(func=cmd_run)

    chaos = sub.add_parser(
        "chaos",
        help="hard-failure sweep: kill a fabric link at fractions of the "
        "measured window, per technology",
    )
    _add_root(chaos)
    chaos.add_argument(
        "--app", default="is", help="application id (default: is, all-to-all)"
    )
    chaos.add_argument(
        "--arg",
        action="append",
        metavar="KEY=VALUE",
        help="application argument (repeatable; e.g. config=S)",
    )
    chaos.add_argument(
        "--nodes", type=int, default=8, help="node count (default 8)"
    )
    chaos.add_argument(
        "--ppn", type=int, default=1, help="processes per node (default 1)"
    )
    chaos.add_argument(
        "--network",
        action="append",
        choices=["ib", "elan"],
        help="technology to sweep (repeatable; default both)",
    )
    chaos.add_argument(
        "--link",
        action="append",
        metavar="NAME",
        help="fabric link to kill (repeatable; default: first inter-switch "
        "hop of the longest route)",
    )
    chaos.add_argument(
        "--at",
        action="append",
        type=float,
        metavar="FRACTION",
        help="kill time as a fraction of the measured window "
        "(repeatable; default 0.25 0.5 0.75)",
    )
    chaos.add_argument(
        "--topology",
        action="append",
        metavar="KEY=VALUE",
        help="topology field (repeatable; e.g. kind=fattree radix=4 levels=2)",
    )
    chaos.add_argument(
        "--fault",
        action="append",
        metavar="KEY=VALUE",
        help="extra fault-plan knob for degraded runs "
        "(repeatable; e.g. elan_rails=2)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="RNG seed")
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU; default 1 = serial)",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget (simulator watchdog)",
    )
    chaos.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="per-run simulated-event budget",
    )
    chaos.add_argument(
        "--json", action="store_true", help="also print the result as JSON"
    )
    chaos.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    chaos.set_defaults(func=cmd_chaos)

    status = sub.add_parser("status", help="summarize journal and cache")
    _add_root(status)
    status.add_argument(
        "--tail", type=int, default=5, help="recent journal lines to show"
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the status as one JSON object (the same payload "
        "repro-serve exposes at GET /v1/status)",
    )
    status.set_defaults(func=cmd_status)

    clean = sub.add_parser("clean", help="delete cached results and journal")
    _add_root(clean)
    clean.set_defaults(func=cmd_clean)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
