"""Chaos studies: sweep hard-failure time x location x technology.

A :class:`ChaosStudy` turns the fault layer's hard-failure machinery
(:mod:`repro.faults.hard`) into a campaign-shaped experiment: for each
technology it first measures the *pristine* run, then re-runs the same
program with one fabric link killed at a chosen fraction of the measured
window, for every (link, fraction) pair in the sweep.  Each degraded
cell reports whether the job completed, the degraded-bandwidth ratio
(pristine time over degraded time — 1.0 means unaffected, smaller means
slower), recovery time spent in failover, and the structured error when
the technology cannot recover (single-rail Elan-4 raising
:class:`~repro.errors.LinkDeadError`).

Kill times aim at the *measured* window, not absolute simulation time:
MPI_Init and the synchronizing barrier consume substantial simulated
time before the benchmark starts (queue-pair setup is itself an O(n)
cost under InfiniBand), so "kill at 50%" anchors at
``sim_end_us - elapsed_us`` — the window start recoverable from any
campaign record — plus the fraction of the elapsed window.

Cells execute through the ordinary :class:`~.engine.CampaignEngine`, so
chaos sweeps inherit caching, journaling, retries and the worker pool,
and parallel results stay bit-identical to serial ones.  An
unsurvivable cell (a technology correctly reporting a dead fabric) is an
*expected* outcome, not a campaign failure: :meth:`ChaosResult.failures`
only returns cells whose error is something other than a structured
link-death report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..networks.params import ELAN_4, IB_4X
from ..sim import Simulator
from ..topology import TopologySpec
from .engine import CampaignEngine
from .spec import RunSpec

#: Error types that are legitimate chaos outcomes: the technology
#: detected the dead fabric and reported it structurally, rather than
#: hanging or crashing incidentally.
EXPECTED_ERRORS = ("LinkDeadError", "RetryExhaustedError")


def default_kill_link(
    nodes: int,
    topology: Optional[Dict[str, Any]] = None,
    network: str = "ib",
) -> str:
    """The most interesting link to kill: the first fabric hop of the
    longest route (rank 0 to the last rank).

    Prefers an inter-switch or torus link (where path diversity exists)
    over a node cable (where killing the link strands the node).  Built
    on a scratch simulator; deterministic in the arguments alone.
    """
    if nodes < 2:
        raise ConfigurationError("chaos needs at least two nodes")
    params = IB_4X if network == "ib" else ELAN_4
    tspec = TopologySpec.from_dict(dict(topology)) if topology else TopologySpec()
    fabric = tspec.build(Simulator(seed=0), nodes, params.fabric)
    stages = fabric.wire_stages(0, nodes - 1)
    for stage in stages:
        if stage.name.startswith(("isl:", "torus.")):
            return stage.name
    for stage in stages:
        if stage.name in fabric.links:
            return stage.name
    raise ConfigurationError(
        f"no killable fabric link between nodes 0 and {nodes - 1}"
    )


@dataclass
class ChaosCell:
    """One degraded run: a link killed at a fraction of the window."""

    network: str
    link: str
    at_fraction: float
    kill_at_us: float
    status: str
    completed: bool
    pristine_us: float
    degraded_us: Optional[float] = None
    #: Pristine elapsed over degraded elapsed: 1.0 = unaffected.
    degraded_bw_ratio: Optional[float] = None
    failovers: int = 0
    #: Total simulated time spent inside failover windows.
    recovery_us: float = 0.0
    rail_switches: int = 0
    link_dead_errors: int = 0
    error: str = ""
    error_type: str = ""
    key: str = ""

    @property
    def expected(self) -> bool:
        """Whether this cell's outcome is a legitimate chaos result."""
        return self.completed or self.error_type in EXPECTED_ERRORS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "network": self.network,
            "link": self.link,
            "at_fraction": self.at_fraction,
            "kill_at_us": self.kill_at_us,
            "status": self.status,
            "completed": self.completed,
            "pristine_us": self.pristine_us,
            "degraded_us": self.degraded_us,
            "degraded_bw_ratio": self.degraded_bw_ratio,
            "failovers": self.failovers,
            "recovery_us": self.recovery_us,
            "rail_switches": self.rail_switches,
            "link_dead_errors": self.link_dead_errors,
            "error": self.error,
            "error_type": self.error_type,
            "key": self.key,
        }


@dataclass
class ChaosResult:
    """All cells of one chaos sweep, in sweep order."""

    cells: List[ChaosCell]
    #: Pristine elapsed time per network.
    pristine_us: Dict[str, float]

    @property
    def completion_rate(self) -> float:
        """Fraction of degraded cells that finished the program."""
        if not self.cells:
            return 0.0
        return sum(1 for c in self.cells if c.completed) / len(self.cells)

    def failures(self) -> List[ChaosCell]:
        """Cells that ended in an *unexpected* error (see module doc)."""
        return [c for c in self.cells if not c.expected]

    def summary(self) -> str:
        lines = [
            f"chaos study: {len(self.cells)} degraded cells, "
            f"{self.completion_rate * 100.0:.0f}% completed"
        ]
        for network, us in sorted(self.pristine_us.items()):
            lines.append(f"  pristine {network}: {us:.1f}us")
        for cell in self.cells:
            if cell.completed:
                detail = (
                    f"bw ratio {cell.degraded_bw_ratio:.3f}, "
                    f"{cell.failovers} failover(s), "
                    f"recovery {cell.recovery_us:.1f}us"
                )
            else:
                detail = cell.error or cell.status
                if cell.error_type in EXPECTED_ERRORS:
                    detail = f"expected: {detail}"
            lines.append(
                f"  {cell.network} kill {cell.link} "
                f"@{cell.at_fraction:.0%} -> "
                f"{'ok' if cell.completed else 'FAILED'} ({detail})"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "completion_rate": self.completion_rate,
            "pristine_us": dict(sorted(self.pristine_us.items())),
            "cells": [c.to_dict() for c in self.cells],
        }


@dataclass
class ChaosStudy:
    """A hard-failure sweep: (technology x link x kill fraction).

    ``kill_links`` empty means "pick the default" (see
    :func:`default_kill_link`).  ``fault_knobs`` forwards extra
    :class:`~repro.faults.FaultPlan` fields to every degraded run —
    ``{"elan_rails": 2}`` models a dual-rail Quadrics machine that
    survives a link death by switching rails.
    """

    app: str = "is"
    app_args: Dict[str, Any] = field(default_factory=dict)
    nodes: int = 8
    ppn: int = 1
    topology: Dict[str, Any] = field(default_factory=dict)
    networks: Sequence[str] = ("ib", "elan")
    kill_links: Sequence[str] = ()
    fractions: Sequence[float] = (0.25, 0.5, 0.75)
    seed: int = 0
    fault_knobs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.networks:
            raise ConfigurationError("chaos study needs at least one network")
        if not self.fractions:
            raise ConfigurationError("chaos study needs at least one fraction")
        for fraction in self.fractions:
            if not 0.0 <= float(fraction) <= 1.0:
                raise ConfigurationError(
                    f"kill fraction {fraction} outside [0, 1]"
                )

    def _base_spec(self, network: str, faults: Dict[str, Any]) -> RunSpec:
        return RunSpec(
            app=self.app,
            network=network,
            nodes=self.nodes,
            ppn=self.ppn,
            seed=self.seed,
            app_args=tuple(sorted(self.app_args.items())),
            faults=tuple(sorted(faults.items())),
            topology=tuple(sorted(self.topology.items())),
        )

    def links_for(self, network: str) -> List[str]:
        if self.kill_links:
            return list(self.kill_links)
        return [default_kill_link(self.nodes, self.topology, network)]

    def run(self, engine: CampaignEngine) -> ChaosResult:
        """Execute the sweep; every cell goes through ``engine``."""
        pristine_specs = [self._base_spec(n, {}) for n in self.networks]
        pristine = engine.run_specs(pristine_specs)
        window: Dict[str, Tuple[float, float]] = {}
        pristine_us: Dict[str, float] = {}
        for network, record in zip(self.networks, pristine.records):
            if record.get("status") != "ok":
                raise ConfigurationError(
                    f"pristine {network} run failed: "
                    f"{record.get('error', 'unknown error')}"
                )
            elapsed = float(record["elapsed_us"])
            start = float(record.get("sim_end_us", elapsed)) - elapsed
            window[network] = (start, elapsed)
            pristine_us[network] = elapsed

        plan: List[Tuple[str, str, float, float, RunSpec]] = []
        for network in self.networks:
            start, elapsed = window[network]
            for link in self.links_for(network):
                for fraction in self.fractions:
                    kill_at = round(start + float(fraction) * elapsed, 3)
                    faults = dict(self.fault_knobs)
                    faults["link_down"] = link
                    faults["link_down_at_us"] = kill_at
                    plan.append(
                        (network, link, float(fraction), kill_at,
                         self._base_spec(network, faults))
                    )

        degraded = engine.run_specs([spec for *_, spec in plan])
        cells: List[ChaosCell] = []
        for (network, link, fraction, kill_at, _), record in zip(
            plan, degraded.records
        ):
            stats = record.get("fault_stats") or {}
            cell = ChaosCell(
                network=network,
                link=link,
                at_fraction=fraction,
                kill_at_us=kill_at,
                status=record.get("status", "?"),
                completed=record.get("status") == "ok",
                pristine_us=pristine_us[network],
                failovers=int(stats.get("failovers", 0)),
                recovery_us=float(stats.get("failover_us", 0.0)),
                rail_switches=int(stats.get("rail_switches", 0)),
                link_dead_errors=int(stats.get("link_dead_errors", 0)),
                # Prefer the root cause dug out of the __cause__ chain
                # ("LinkDeadError on isl:...") over the surfaced wrapper
                # ("process 'elan.tx1->3' crashed").
                error=record.get("error_cause") or record.get("error", ""),
                error_type=record.get("error_type", ""),
                key=record.get("key", ""),
            )
            if cell.completed:
                cell.degraded_us = float(record["elapsed_us"])
                if cell.degraded_us > 0:
                    cell.degraded_bw_ratio = cell.pristine_us / cell.degraded_us
            cells.append(cell)
        return ChaosResult(cells=cells, pristine_us=pristine_us)
