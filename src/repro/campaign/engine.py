"""The campaign engine: cached, parallel, resumable sweep execution.

The engine resolves each :class:`~.spec.RunSpec` in three tiers:

1. **cache** — a content-addressed record from any earlier campaign;
2. **journal** — a completed line from this campaign root's journal
   (covers cache-disabled runs and interrupted campaigns);
3. **run** — execute on a fresh simulated machine, serially or on a
   :mod:`multiprocessing` worker pool.

The simulator is deterministic per seed, so tier choice and worker
count never change a record's payload — parallel campaigns are
bit-identical to serial ones, and re-running an identical campaign is a
pure cache replay.  Duplicate points are collapsed before execution and
every completion is journaled immediately, which is what makes a
half-finished campaign resumable with no bookkeeping beyond the JSONL
file.

Execution itself lives in :class:`~.scheduler.JobScheduler`: the engine
builds one per invocation, submits every spec, and waits.  The
``repro-serve`` daemon drives a long-lived scheduler through the same
interface, so batch campaigns and the query service share one
cache/coalesce/retry/quarantine code path.

Robustness: a failing point never takes the campaign down.  Failed runs
are retried up to ``max_retries`` times with exponential backoff; points
that still fail are **quarantined** — their final error record lands in
``quarantine.jsonl`` beside the journal, the remaining grid completes,
and the invocation reports a nonzero error count.  ``timeout_s`` and
``max_events`` bound each run via the simulator watchdog, and if the
worker pool itself dies mid-campaign the engine falls back to executing
the unfinished tail serially.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .cache import ResultCache
from .journal import Journal
from .scheduler import JobScheduler
from .spec import CampaignSpec, RunSpec

#: Default campaign state directory (override with ``root=``).
DEFAULT_ROOT = ".repro-campaign"


def resolve_workers(workers: int) -> int:
    """Normalize a worker count; 0 means one per CPU."""
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError("worker count cannot be negative")
    return workers


@dataclass
class CampaignResult:
    """Outcome of one engine invocation, records in request order."""

    records: List[Dict[str, Any]]
    #: Runs served from the cache or the journal (not re-simulated).
    hits: int
    #: Runs actually executed this invocation.
    misses: int
    #: Executed runs that ended in an error record.
    errors: int
    #: Wall-clock time of the whole invocation, seconds.
    wall_s: float
    name: str = ""
    #: Tier tallies: {"cache": n, "journal": n, "run": n}.
    sources: Dict[str, int] = field(default_factory=dict)
    #: Runs that exhausted their retry budget and were quarantined.
    quarantined: int = 0
    #: Failed executions that later succeeded on retry.
    retried_ok: int = 0

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def values(self) -> List[Optional[float]]:
        """The scalar metric of every record, in request order."""
        return [r.get("value") for r in self.records]

    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    def summary(self) -> str:
        name = f"campaign {self.name!r}: " if self.name else ""
        text = (
            f"{name}{self.total} runs in {self.wall_s:.2f}s — "
            f"{self.hits} cached ({self.hit_rate * 100.0:.0f}% hit rate), "
            f"{self.misses} executed, {self.errors} errors"
        )
        if self.quarantined:
            text += f" ({self.quarantined} quarantined)"
        if self.retried_ok:
            text += f", {self.retried_ok} recovered on retry"
        return text


class CampaignEngine:
    """Executes RunSpecs with caching, journaling and a worker pool."""

    def __init__(
        self,
        root=DEFAULT_ROOT,
        workers: int = 1,
        use_cache: bool = True,
        resume: bool = True,
        trace: bool = False,
        echo: Optional[Callable[[str], None]] = None,
        timeout_s: Optional[float] = None,
        max_events: Optional[int] = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.25,
        lifecycle: bool = False,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s cannot be negative")
        self.root = Path(root)
        self.workers = resolve_workers(workers)
        self.use_cache = use_cache
        self.resume = resume
        self.trace = trace
        self.echo = echo
        #: Per-run wall-clock budget, armed as the simulator watchdog.
        self.timeout_s = timeout_s
        #: Per-run simulated-event budget (same watchdog).
        self.max_events = max_events
        #: Also collect lifecycle spans + series per run (record gains
        #: deterministic ``blame`` and ``series`` blocks).
        self.lifecycle = lifecycle
        #: Times a failed point is re-executed before quarantine.
        self.max_retries = max_retries
        #: Base of the exponential inter-retry sleep.
        self.retry_backoff_s = retry_backoff_s
        self.cache = ResultCache(self.root / "cache")
        self.journal = Journal(self.root / "journal.jsonl")
        #: Final error records of points that exhausted their retries.
        self.quarantine = Journal(self.root / "quarantine.jsonl")

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(message)

    def run(self, campaign: CampaignSpec, force: bool = False) -> CampaignResult:
        """Expand and execute one declarative campaign."""
        result = self.run_specs(campaign.expand(), force=force)
        result.name = campaign.name
        return result

    def scheduler(self, journal_reused: bool = True) -> JobScheduler:
        """A :class:`~.scheduler.JobScheduler` with this engine's policy.

        One is built per :meth:`run_specs` invocation (in-memory job
        store); the ``repro-serve`` daemon builds a long-lived durable
        one through the same constructor arguments, which is what keeps
        batch and service execution on one code path.
        """
        return JobScheduler(
            cache=self.cache,
            journal=self.journal,
            quarantine=self.quarantine,
            workers=self.workers,
            use_cache=self.use_cache,
            trace=self.trace,
            timeout_s=self.timeout_s,
            max_events=self.max_events,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            lifecycle=self.lifecycle,
            echo=self.echo,
            journal_reused=journal_reused,
        )

    def run_specs(
        self, specs: Sequence[RunSpec], force: bool = False
    ) -> CampaignResult:
        """Execute a run list; records come back in request order.

        ``force`` bypasses both reuse tiers and re-simulates everything
        (results still land in the cache and journal afterwards).
        """
        # Host wall time, not simulated time: the campaign reports how
        # long *it* took.
        t0 = time.perf_counter()  # repro-lint: disable=RPR001
        specs = list(specs)
        journaled = {} if (force or not self.resume) else self.journal.completed()

        by_key: Dict[str, Dict[str, Any]] = {}
        jobs: Dict[str, Any] = {}
        sources = {"cache": 0, "journal": 0, "run": 0}
        scheduler = self.scheduler()
        try:
            for spec in specs:
                key = spec.key
                if key in by_key or key in jobs:
                    continue  # duplicate point: one execution serves all
                sub = scheduler.submit(spec, force=force, journaled=journaled)
                if sub.record is not None:
                    sources[sub.source] += 1
                    by_key[key] = sub.record
                else:
                    # "coalesced" can't happen here (duplicates are
                    # collapsed above), so this job is freshly scheduled.
                    sources["run"] += 1
                    jobs[key] = sub.job
            scheduler.wait([job.id for job in jobs.values()])
            for key, job in jobs.items():
                by_key[key] = job.record
        finally:
            scheduler.close()

        records = [by_key[spec.key] for spec in specs]
        hits = sources["cache"] + sources["journal"]
        return CampaignResult(
            records=records,
            hits=hits,
            misses=sources["run"],
            errors=scheduler.stats["quarantined"],
            wall_s=time.perf_counter() - t0,  # repro-lint: disable=RPR001
            sources=sources,
            quarantined=scheduler.stats["quarantined"],
            retried_ok=scheduler.stats["retried_ok"],
        )
