"""The campaign engine: cached, parallel, resumable sweep execution.

The engine resolves each :class:`~.spec.RunSpec` in three tiers:

1. **cache** — a content-addressed record from any earlier campaign;
2. **journal** — a completed line from this campaign root's journal
   (covers cache-disabled runs and interrupted campaigns);
3. **run** — execute on a fresh simulated machine, serially or on a
   :mod:`multiprocessing` worker pool.

The simulator is deterministic per seed, so tier choice and worker
count never change a record's payload — parallel campaigns are
bit-identical to serial ones, and re-running an identical campaign is a
pure cache replay.  Duplicate points are collapsed before execution and
every completion is journaled immediately, which is what makes a
half-finished campaign resumable with no bookkeeping beyond the JSONL
file.

Robustness: a failing point never takes the campaign down.  Failed runs
are retried up to ``max_retries`` times with exponential backoff; points
that still fail are **quarantined** — their final error record lands in
``quarantine.jsonl`` beside the journal, the remaining grid completes,
and the invocation reports a nonzero error count.  ``timeout_s`` and
``max_events`` bound each run via the simulator watchdog, and if the
worker pool itself dies mid-campaign the engine falls back to executing
the unfinished tail serially.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .cache import ResultCache
from .journal import Journal
from .runner import execute_run
from .spec import CampaignSpec, RunSpec

#: Default campaign state directory (override with ``root=``).
DEFAULT_ROOT = ".repro-campaign"


def _pool_context():
    # fork is much cheaper than spawn and available everywhere we run
    # (Linux CI and dev boxes); fall back gracefully elsewhere.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def resolve_workers(workers: int) -> int:
    """Normalize a worker count; 0 means one per CPU."""
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError("worker count cannot be negative")
    return workers


@dataclass
class CampaignResult:
    """Outcome of one engine invocation, records in request order."""

    records: List[Dict[str, Any]]
    #: Runs served from the cache or the journal (not re-simulated).
    hits: int
    #: Runs actually executed this invocation.
    misses: int
    #: Executed runs that ended in an error record.
    errors: int
    #: Wall-clock time of the whole invocation, seconds.
    wall_s: float
    name: str = ""
    #: Tier tallies: {"cache": n, "journal": n, "run": n}.
    sources: Dict[str, int] = field(default_factory=dict)
    #: Runs that exhausted their retry budget and were quarantined.
    quarantined: int = 0
    #: Failed executions that later succeeded on retry.
    retried_ok: int = 0

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def values(self) -> List[Optional[float]]:
        """The scalar metric of every record, in request order."""
        return [r.get("value") for r in self.records]

    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    def summary(self) -> str:
        name = f"campaign {self.name!r}: " if self.name else ""
        text = (
            f"{name}{self.total} runs in {self.wall_s:.2f}s — "
            f"{self.hits} cached ({self.hit_rate * 100.0:.0f}% hit rate), "
            f"{self.misses} executed, {self.errors} errors"
        )
        if self.quarantined:
            text += f" ({self.quarantined} quarantined)"
        if self.retried_ok:
            text += f", {self.retried_ok} recovered on retry"
        return text


class CampaignEngine:
    """Executes RunSpecs with caching, journaling and a worker pool."""

    def __init__(
        self,
        root=DEFAULT_ROOT,
        workers: int = 1,
        use_cache: bool = True,
        resume: bool = True,
        trace: bool = False,
        echo: Optional[Callable[[str], None]] = None,
        timeout_s: Optional[float] = None,
        max_events: Optional[int] = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.25,
        lifecycle: bool = False,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s cannot be negative")
        self.root = Path(root)
        self.workers = resolve_workers(workers)
        self.use_cache = use_cache
        self.resume = resume
        self.trace = trace
        self.echo = echo
        #: Per-run wall-clock budget, armed as the simulator watchdog.
        self.timeout_s = timeout_s
        #: Per-run simulated-event budget (same watchdog).
        self.max_events = max_events
        #: Also collect lifecycle spans + series per run (record gains
        #: deterministic ``blame`` and ``series`` blocks).
        self.lifecycle = lifecycle
        #: Times a failed point is re-executed before quarantine.
        self.max_retries = max_retries
        #: Base of the exponential inter-retry sleep.
        self.retry_backoff_s = retry_backoff_s
        self.cache = ResultCache(self.root / "cache")
        self.journal = Journal(self.root / "journal.jsonl")
        #: Final error records of points that exhausted their retries.
        self.quarantine = Journal(self.root / "quarantine.jsonl")

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(message)

    def run(self, campaign: CampaignSpec, force: bool = False) -> CampaignResult:
        """Expand and execute one declarative campaign."""
        result = self.run_specs(campaign.expand(), force=force)
        result.name = campaign.name
        return result

    def run_specs(
        self, specs: Sequence[RunSpec], force: bool = False
    ) -> CampaignResult:
        """Execute a run list; records come back in request order.

        ``force`` bypasses both reuse tiers and re-simulates everything
        (results still land in the cache and journal afterwards).
        """
        # Host wall time, not simulated time: the campaign reports how
        # long *it* took.
        t0 = time.perf_counter()  # repro-lint: disable=RPR001
        specs = list(specs)
        journaled = {} if (force or not self.resume) else self.journal.completed()

        by_key: Dict[str, Dict[str, Any]] = {}
        sources = {"cache": 0, "journal": 0, "run": 0}
        to_run: List[RunSpec] = []
        pending = set()
        for spec in specs:
            key = spec.key
            if key in by_key or key in pending:
                continue  # duplicate point: one execution serves all
            record = None
            if not force and self.use_cache:
                record = self.cache.get(key)
                if record is not None:
                    sources["cache"] += 1
            if record is None and key in journaled:
                record = journaled[key]
                sources["journal"] += 1
                if self.use_cache:
                    self.cache.put(key, record)
            if record is not None:
                by_key[key] = record
                self.journal.append(dict(record, reused=True))
                self._say(f"hit  {record.get('label', key)}")
            else:
                to_run.append(spec)
                pending.add(key)

        spec_by_key = {spec.key: spec for spec in to_run}
        failed: List[RunSpec] = []

        def absorb(record: Dict[str, Any], attempt: int) -> None:
            if attempt:
                record["retry"] = attempt
            by_key[record["key"]] = record
            if record.get("status") == "ok":
                if self.use_cache:
                    self.cache.put(record["key"], record)
            else:
                failed.append(spec_by_key[record["key"]])
            self.journal.append(record)
            status = "ok  " if record.get("status") == "ok" else "FAIL"
            note = f" retry {attempt}/{self.max_retries}" if attempt else ""
            self._say(
                f"{status} {record.get('label', record['key'])} "
                f"({record.get('wall_s', 0.0):.2f}s){note}"
            )

        for record in self._execute(to_run):
            sources["run"] += 1
            absorb(record, attempt=0)

        # Bounded retry with exponential backoff; whatever still fails
        # afterwards is quarantined and the rest of the campaign stands.
        retried_ok = 0
        for attempt in range(1, self.max_retries + 1):
            if not failed:
                break
            retrying, failed = failed, []
            backoff = self.retry_backoff_s * (2 ** (attempt - 1))
            if backoff:
                time.sleep(backoff)
            self._say(
                f"retrying {len(retrying)} failed run(s), "
                f"attempt {attempt}/{self.max_retries}"
            )
            for record in self._execute(retrying):
                absorb(record, attempt=attempt)
            retried_ok += len(retrying) - len(failed)

        quarantined = 0
        for spec in failed:
            record = by_key[spec.key]
            self.quarantine.append(record)
            quarantined += 1
            self._say(f"QUARANTINED {record.get('label', spec.key)}")

        records = [by_key[spec.key] for spec in specs]
        hits = sources["cache"] + sources["journal"]
        return CampaignResult(
            records=records,
            hits=hits,
            misses=sources["run"],
            errors=len(failed),
            wall_s=time.perf_counter() - t0,  # repro-lint: disable=RPR001
            sources=sources,
            quarantined=quarantined,
            retried_ok=retried_ok,
        )

    def _execute(self, specs: List[RunSpec]):
        """Yield a record per spec as it completes (order unspecified)."""
        if not specs:
            return
        run = partial(
            execute_run,
            trace=self.trace,
            timeout_s=self.timeout_s,
            max_events=self.max_events,
            lifecycle=self.lifecycle,
        )
        if self.workers <= 1 or len(specs) == 1:
            for spec in specs:
                yield run(spec)
            return
        done = set()
        try:
            ctx = _pool_context()
            with ctx.Pool(processes=min(self.workers, len(specs))) as pool:
                # Unordered so each completion is journaled (and therefore
                # resumable) the moment it lands; request order is restored
                # by the caller via spec keys.
                for record in pool.imap_unordered(run, specs, chunksize=1):
                    done.add(record["key"])
                    yield record
        except Exception as exc:  # pool infrastructure died, not a run
            self._say(
                f"worker pool failed ({type(exc).__name__}: {exc}); "
                f"finishing the remaining runs serially"
            )
            for spec in specs:
                if spec.key not in done:
                    yield run(spec)
