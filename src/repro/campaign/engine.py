"""The campaign engine: cached, parallel, resumable sweep execution.

The engine resolves each :class:`~.spec.RunSpec` in three tiers:

1. **cache** — a content-addressed record from any earlier campaign;
2. **journal** — a completed line from this campaign root's journal
   (covers cache-disabled runs and interrupted campaigns);
3. **run** — execute on a fresh simulated machine, serially or on a
   :mod:`multiprocessing` worker pool.

The simulator is deterministic per seed, so tier choice and worker
count never change a record's payload — parallel campaigns are
bit-identical to serial ones, and re-running an identical campaign is a
pure cache replay.  Duplicate points are collapsed before execution and
every completion is journaled immediately, which is what makes a
half-finished campaign resumable with no bookkeeping beyond the JSONL
file.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .cache import ResultCache
from .journal import Journal
from .runner import execute_run
from .spec import CampaignSpec, RunSpec

#: Default campaign state directory (override with ``root=``).
DEFAULT_ROOT = ".repro-campaign"


def _pool_context():
    # fork is much cheaper than spawn and available everywhere we run
    # (Linux CI and dev boxes); fall back gracefully elsewhere.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def resolve_workers(workers: int) -> int:
    """Normalize a worker count; 0 means one per CPU."""
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError("worker count cannot be negative")
    return workers


@dataclass
class CampaignResult:
    """Outcome of one engine invocation, records in request order."""

    records: List[Dict[str, Any]]
    #: Runs served from the cache or the journal (not re-simulated).
    hits: int
    #: Runs actually executed this invocation.
    misses: int
    #: Executed runs that ended in an error record.
    errors: int
    #: Wall-clock time of the whole invocation, seconds.
    wall_s: float
    name: str = ""
    #: Tier tallies: {"cache": n, "journal": n, "run": n}.
    sources: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def values(self) -> List[Optional[float]]:
        """The scalar metric of every record, in request order."""
        return [r.get("value") for r in self.records]

    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    def summary(self) -> str:
        name = f"campaign {self.name!r}: " if self.name else ""
        return (
            f"{name}{self.total} runs in {self.wall_s:.2f}s — "
            f"{self.hits} cached ({self.hit_rate * 100.0:.0f}% hit rate), "
            f"{self.misses} executed, {self.errors} errors"
        )


class CampaignEngine:
    """Executes RunSpecs with caching, journaling and a worker pool."""

    def __init__(
        self,
        root=DEFAULT_ROOT,
        workers: int = 1,
        use_cache: bool = True,
        resume: bool = True,
        trace: bool = False,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.workers = resolve_workers(workers)
        self.use_cache = use_cache
        self.resume = resume
        self.trace = trace
        self.echo = echo
        self.cache = ResultCache(self.root / "cache")
        self.journal = Journal(self.root / "journal.jsonl")

    def _say(self, message: str) -> None:
        if self.echo is not None:
            self.echo(message)

    def run(self, campaign: CampaignSpec, force: bool = False) -> CampaignResult:
        """Expand and execute one declarative campaign."""
        result = self.run_specs(campaign.expand(), force=force)
        result.name = campaign.name
        return result

    def run_specs(
        self, specs: Sequence[RunSpec], force: bool = False
    ) -> CampaignResult:
        """Execute a run list; records come back in request order.

        ``force`` bypasses both reuse tiers and re-simulates everything
        (results still land in the cache and journal afterwards).
        """
        t0 = time.perf_counter()
        specs = list(specs)
        journaled = {} if (force or not self.resume) else self.journal.completed()

        by_key: Dict[str, Dict[str, Any]] = {}
        sources = {"cache": 0, "journal": 0, "run": 0}
        to_run: List[RunSpec] = []
        pending = set()
        for spec in specs:
            key = spec.key
            if key in by_key or key in pending:
                continue  # duplicate point: one execution serves all
            record = None
            if not force and self.use_cache:
                record = self.cache.get(key)
                if record is not None:
                    sources["cache"] += 1
            if record is None and key in journaled:
                record = journaled[key]
                sources["journal"] += 1
                if self.use_cache:
                    self.cache.put(key, record)
            if record is not None:
                by_key[key] = record
                self.journal.append(dict(record, reused=True))
                self._say(f"hit  {record.get('label', key)}")
            else:
                to_run.append(spec)
                pending.add(key)

        errors = 0
        for record in self._execute(to_run):
            sources["run"] += 1
            by_key[record["key"]] = record
            if record.get("status") == "ok":
                if self.use_cache:
                    self.cache.put(record["key"], record)
            else:
                errors += 1
            self.journal.append(record)
            status = "ok  " if record.get("status") == "ok" else "FAIL"
            self._say(
                f"{status} {record.get('label', record['key'])} "
                f"({record.get('wall_s', 0.0):.2f}s)"
            )

        records = [by_key[spec.key] for spec in specs]
        hits = sources["cache"] + sources["journal"]
        return CampaignResult(
            records=records,
            hits=hits,
            misses=sources["run"],
            errors=errors,
            wall_s=time.perf_counter() - t0,
            sources=sources,
        )

    def _execute(self, specs: List[RunSpec]):
        """Yield a record per spec as it completes (order unspecified)."""
        if not specs:
            return
        run = partial(execute_run, trace=self.trace)
        if self.workers <= 1 or len(specs) == 1:
            for spec in specs:
                yield run(spec)
            return
        ctx = _pool_context()
        with ctx.Pool(processes=min(self.workers, len(specs))) as pool:
            # Unordered so each completion is journaled (and therefore
            # resumable) the moment it lands; request order is restored
            # by the caller via spec keys.
            for record in pool.imap_unordered(run, specs, chunksize=1):
                yield record
