"""Execution of one :class:`~.spec.RunSpec` — the worker-pool unit.

:func:`execute_run` is a module-level function taking only picklable
arguments so it can cross a :mod:`multiprocessing` boundary unchanged.
The simulator is deterministic for a fixed seed, so the record it
returns is identical whether the run happens in the parent process, a
pool worker, or a different campaign entirely — which is what makes the
content-addressed cache sound.

Robustness: failures never escape — every outcome becomes a journal
record.  A ``timeout_s``/``max_events`` budget arms the simulator's
watchdog, so a hung or runaway point is reported (with its blocked-rank
roster) instead of wedging a worker.  Error records carry both the
surfaced exception and the *root cause* dug out of the ``__cause__``
chain — the difference between "process rank3 crashed" and
"RetryExhaustedError on link up0".
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..faults.recovery import root_fault
from ..mpi import Machine
from ..sim import Tracer
from ..telemetry import Telemetry
from ..version import __version__
from .programs import build_program
from .spec import RunSpec


def scalar_value(values: List[Any]) -> Optional[float]:
    """The study metric: the slowest rank's numeric return value.

    Matches ``max(result.values)`` for app skeletons (every rank returns
    its elapsed time) while tolerating programs such as ping-pong where
    idle ranks return ``None``.
    """
    numeric = [v for v in values if isinstance(v, (int, float))]
    return float(max(numeric)) if numeric else None


def execute_run(
    spec: RunSpec,
    trace: bool = False,
    timeout_s: Optional[float] = None,
    max_events: Optional[int] = None,
    lifecycle: bool = False,
    profile: bool = False,
) -> Dict[str, Any]:
    """Run one spec on a fresh machine; always returns a journal record.

    Failures are captured as ``status: "error"`` records rather than
    raised, so one bad point can't take down a campaign (or a worker).
    ``timeout_s`` bounds the run's wall-clock time and ``max_events`` its
    event count via the simulator watchdog; a tripped budget produces an
    error record naming the blocked ranks.  ``lifecycle`` additionally
    collects message spans and occupancy series, folding them into the
    record as a ``blame`` table and a resampled ``series`` block — both
    deterministic, so cached and fresh records stay byte-identical.
    ``profile`` attaches a :class:`~repro.perf.KernelProfiler` and adds
    its compact summary as a ``perf`` block; the summary carries host
    wall times, so profiled records are *not* byte-stable across runs —
    which is why the flag is off by default and never set by the batch
    engine (the result cache must stay content-pure).
    """
    # Host wall time, not simulated time (see ``wall_s`` below).
    t0 = time.perf_counter()  # repro-lint: disable=RPR001
    record: Dict[str, Any] = {
        "key": spec.key,
        "spec": spec.to_dict(),
        "label": spec.label(),
        "version": __version__,
    }
    tracer = Tracer(enabled=True) if trace else None
    machine: Optional[Machine] = None
    profiler = None
    if profile:
        from ..perf import KernelProfiler

        profiler = KernelProfiler()
    try:
        machine = Machine(
            spec.network,
            spec.nodes,
            ppn=spec.ppn,
            seed=spec.seed,
            fabric_radix=spec.fabric_radix,
            topology=spec.topology_spec,
            ib_progress_thread=spec.ib_progress_thread,
            trace=tracer,
            faults=spec.fault_plan,
            profiler=profiler,
            # Metrics are deterministic, cheap and picklable; every
            # campaign record carries them (timeline stays off — spans
            # are bulky and reconstructable by re-running with tracing).
            telemetry=Telemetry(
                metrics=True,
                timeline=False,
                lifecycle=lifecycle,
                series=lifecycle,
            ),
        )
        result = machine.run(
            build_program(spec.app, spec.args),
            max_events=max_events,
            wall_limit_s=timeout_s,
        )
        record.update(
            status="ok",
            value=scalar_value(result.values),
            elapsed_us=result.elapsed_us,
        )
        if lifecycle:
            record["blame"] = machine.blame()
            record["series"] = machine.series(points=64)
    except Exception as exc:  # noqa: BLE001 - isolate per-run failures
        cause = root_fault(exc) or exc
        record.update(
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(cause).__name__,
        )
        if cause is not exc:
            record["error_cause"] = f"{type(cause).__name__}: {cause}"
    if machine is not None:
        record["metrics"] = machine.metrics()
        # Absolute simulated end time.  ``elapsed_us`` spans only the
        # measured window (post-init barrier to last return), so
        # ``sim_end_us - elapsed_us`` recovers the window's start — the
        # anchor chaos studies need to aim hard faults at a fraction of
        # the *measured* run rather than at MPI_Init traffic.
        record["sim_end_us"] = machine.sim.now
    if machine is not None and machine.sim.faults is not None:
        record["fault_stats"] = machine.sim.faults.stats()
    if profiler is not None:
        record["perf"] = profiler.summary()
    record["wall_s"] = time.perf_counter() - t0  # repro-lint: disable=RPR001
    if tracer is not None:
        record["trace_summary"] = tracer.summary()
    return record
