"""Declarative campaign specifications.

A :class:`CampaignSpec` names a parameter sweep — a cartesian ``grid``
over network, node count, PPN, application and application arguments,
plus optional explicit ``points`` — and expands it into individual
:class:`RunSpec` measurement runs (one per grid point per repetition).

A :class:`RunSpec` is the atom of campaign execution: a fully
declarative, picklable, JSON-serializable description of one simulated
measurement.  Its :attr:`RunSpec.key` is a stable content hash of the
spec plus the ``repro`` package version, which keys the on-disk result
cache and the run journal — two campaigns agree on a key exactly when
they would produce bit-identical results.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..mpi.machine import NETWORKS
from ..topology import TopologySpec
from ..version import __version__

#: RunSpec fields a grid/point is allowed to set directly.
_RUN_FIELDS = ("app", "network", "nodes", "ppn", "fabric_radix", "ib_progress_thread")

#: Prefix for sweeping application arguments, e.g. ``app_args.size``.
_ARG_PREFIX = "app_args."

#: Prefix for sweeping fault-plan knobs, e.g. ``fault.ber``.
_FAULT_PREFIX = "fault."

#: Prefix for sweeping topology fields, e.g. ``topology.kind``.
_TOPO_PREFIX = "topology."


def _check_json_value(name: str, value: Any) -> None:
    if not isinstance(value, (str, int, float, bool, type(None))):
        raise ConfigurationError(
            f"campaign parameter {name}={value!r} is not a JSON scalar"
        )


def _canon_scalar(value: Any) -> Any:
    """Collapse numerically-equal JSON scalars onto one canonical form.

    ``ber=0`` and ``ber=0.0`` describe the same simulation, so they must
    hash to the same cache key — otherwise the serve layer would run (and
    fail to coalesce) duplicate jobs for one question.  Integral floats
    become ints; bools are left alone (``True != 1`` as a knob value).
    """
    if isinstance(value, float) and not isinstance(value, bool):
        if value.is_integer():
            return int(value)
    return value


def _canon_pairs(pairs: Iterable[Tuple[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Sorted, scalar-canonicalized ``(name, value)`` pairs.

    Sorting here (not just in ``to_dict``) makes *spec equality* — and
    therefore in-flight coalescing — agree with cache-key equality even
    for specs built with hand-ordered tuples.
    """
    return tuple(sorted((name, _canon_scalar(value)) for name, value in pairs))


@dataclass(frozen=True)
class RunSpec:
    """One declarative measurement run (app x network x shape x seed).

    Field values must be plain data — no lambdas, closures or live
    objects — so the spec pickles for parallel workers and hashes into
    a stable cache key (``repro-lint`` rule RPR006 enforces this at
    construction sites).
    """

    app: str
    network: str
    nodes: int
    ppn: int = 1
    seed: int = 0
    #: Application arguments as sorted ``(name, value)`` pairs so the
    #: spec stays hashable; use :attr:`args` for the dict view.
    app_args: Tuple[Tuple[str, Any], ...] = ()
    #: Optional what-if fabric: two-level fat tree of this radix.
    fabric_radix: Optional[int] = None
    #: InfiniBand asynchronous progress thread (ablation knob).
    ib_progress_thread: bool = False
    #: Fault-plan overrides as sorted ``(field, value)`` pairs — the
    #: degraded-fabric axes (see :class:`repro.faults.FaultPlan`).  Empty
    #: means a pristine machine (no injector attached at all).
    faults: Tuple[Tuple[str, Any], ...] = ()
    #: Topology overrides as sorted ``(field, value)`` pairs (see
    #: :class:`repro.topology.TopologySpec`).  Empty means the default
    #: single-chassis crossbar (or the legacy ``fabric_radix`` tree).
    topology: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.network not in NETWORKS:
            raise ConfigurationError(
                f"unknown network {self.network!r}; expected one of {NETWORKS}"
            )
        # Canonicalize before validating: semantically identical specs
        # (hand-ordered tuples, int-vs-float scalars like ber=0 vs
        # ber=0.0) must compare equal and hash to one cache key, or the
        # serve layer would fail to coalesce identical in-flight work.
        # The dataclass is frozen, so normalized fields are written back
        # through object.__setattr__.
        for name in ("app_args", "faults", "topology"):
            object.__setattr__(self, name, _canon_pairs(getattr(self, name)))
        for name in ("nodes", "ppn", "seed", "fabric_radix"):
            value = getattr(self, name)
            if isinstance(value, float) and not isinstance(value, bool):
                canon = _canon_scalar(value)
                if not isinstance(canon, int):
                    raise ConfigurationError(
                        f"{name}={value!r} must be an integer"
                    )
                object.__setattr__(self, name, canon)
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.ppn < 1:
            raise ConfigurationError("need at least one process per node")
        for name, value in self.app_args:
            _check_json_value(f"{_ARG_PREFIX}{name}", value)
        for name, value in self.faults:
            _check_json_value(f"{_FAULT_PREFIX}{name}", value)
        for name, value in self.topology:
            _check_json_value(f"{_TOPO_PREFIX}{name}", value)
        if self.topology and self.fabric_radix is not None:
            raise ConfigurationError(
                "set either topology.* axes or fabric_radix, not both"
            )
        # Validate knob names and ranges eagerly, at declaration time.
        self.fault_plan
        self.topology_spec

    @property
    def args(self) -> Dict[str, Any]:
        """Application arguments as a plain dict."""
        return dict(self.app_args)

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The run's :class:`~repro.faults.FaultPlan`, or ``None``."""
        if not self.faults:
            return None
        return FaultPlan.from_dict(dict(self.faults))

    @property
    def topology_spec(self) -> Optional[TopologySpec]:
        """The run's :class:`~repro.topology.TopologySpec`, or ``None``."""
        if not self.topology:
            return None
        return TopologySpec.from_dict(dict(self.topology))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (sorted app_args)."""
        return {
            "app": self.app,
            "app_args": dict(sorted(self.app_args)),
            "network": self.network,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "seed": self.seed,
            "fabric_radix": self.fabric_radix,
            "ib_progress_thread": self.ib_progress_thread,
            "faults": dict(sorted(self.faults)),
            "topology": dict(sorted(self.topology)),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        args = data.get("app_args") or {}
        faults = data.get("faults") or {}
        topology = data.get("topology") or {}
        return cls(
            app=data["app"],
            network=data["network"],
            nodes=int(data["nodes"]),
            ppn=int(data.get("ppn", 1)),
            seed=int(data.get("seed", 0)),
            app_args=tuple(sorted(args.items())),
            fabric_radix=data.get("fabric_radix"),
            ib_progress_thread=bool(data.get("ib_progress_thread", False)),
            faults=tuple(sorted(faults.items())),
            topology=tuple(sorted(topology.items())),
        )

    @property
    def key(self) -> str:
        """Stable content hash of this run plus the repro version.

        Any change to the spec *or* to the package version (and hence
        potentially to the model) yields a new key, so stale cache
        entries can never be mistaken for current results.

        Memoized per instance: the serve daemon derives the key on
        every request, and the spec is frozen so it cannot go stale.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        payload = json.dumps(
            {"version": __version__, "run": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
        object.__setattr__(self, "_key", digest)
        return digest

    def label(self) -> str:
        """Compact human-readable identity for journals and logs."""
        args = ",".join(f"{k}={v}" for k, v in self.app_args)
        app = f"{self.app}({args})" if args else self.app
        text = f"{app} {self.network} {self.nodes}n x{self.ppn}ppn seed={self.seed}"
        if self.faults:
            knobs = ",".join(f"{k}={v}" for k, v in self.faults)
            text += f" faults[{knobs}]"
        if self.topology:
            knobs = ",".join(f"{k}={v}" for k, v in self.topology)
            text += f" topo[{knobs}]"
        return text


def _point_to_spec(point: Dict[str, Any], seed: int) -> RunSpec:
    """Build one RunSpec from a flat parameter dict (dotted app args)."""
    fields: Dict[str, Any] = {}
    args: Dict[str, Any] = {}
    faults: Dict[str, Any] = {}
    topology: Dict[str, Any] = {}
    for name, value in point.items():
        if name.startswith(_ARG_PREFIX):
            args[name[len(_ARG_PREFIX):]] = value
        elif name.startswith(_FAULT_PREFIX):
            faults[name[len(_FAULT_PREFIX):]] = value
        elif name.startswith(_TOPO_PREFIX):
            topology[name[len(_TOPO_PREFIX):]] = value
        elif name == "app_args":
            if not isinstance(value, dict):
                raise ConfigurationError("app_args must be a mapping")
            args.update(value)
        elif name == "faults":
            if not isinstance(value, dict):
                raise ConfigurationError("faults must be a mapping")
            faults.update(value)
        elif name == "topology":
            if not isinstance(value, dict):
                raise ConfigurationError("topology must be a mapping")
            topology.update(value)
        elif name in _RUN_FIELDS:
            fields[name] = value
        else:
            raise ConfigurationError(
                f"unknown campaign parameter {name!r}; expected one of "
                f"{_RUN_FIELDS}, {_ARG_PREFIX}<name>, {_FAULT_PREFIX}<knob> "
                f"or {_TOPO_PREFIX}<field>"
            )
    if "app" not in fields:
        raise ConfigurationError("every campaign point needs an 'app'")
    if "network" not in fields:
        raise ConfigurationError("every campaign point needs a 'network'")
    fields.setdefault("nodes", 1)
    return RunSpec(
        seed=seed,
        app_args=tuple(sorted(args.items())),
        faults=tuple(sorted(faults.items())),
        topology=tuple(sorted(topology.items())),
        **fields,
    )


@dataclass
class CampaignSpec:
    """A named sweep: base parameters, a cartesian grid, explicit points.

    ``base`` holds defaults applied to every run (e.g. the app and its
    fixed arguments); ``grid`` maps parameter names to value lists and
    expands to their cartesian product; ``points`` appends explicit
    parameter dicts (each merged over ``base``) for irregular sweeps.
    Application arguments are addressed with dotted names
    (``app_args.size``) or a nested ``app_args`` mapping.  Every
    expanded point runs ``repetitions`` times with seeds ``seed_base``,
    ``seed_base + 1``, ... — the paper's four-repetition methodology.
    """

    name: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    points: List[Dict[str, Any]] = field(default_factory=list)
    repetitions: int = 1
    seed_base: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if self.repetitions < 1:
            raise ConfigurationError("need at least one repetition")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"grid axis {axis!r} must be a non-empty list"
                )

    def expand(self) -> List[RunSpec]:
        """All runs, in deterministic order (grid order, reps innermost)."""
        specs: List[RunSpec] = []
        axes = sorted(self.grid)
        if self.grid or not self.points:
            # An empty grid with no explicit points runs the base alone;
            # with explicit points, only the points run.
            for combo in itertools.product(*(self.grid[a] for a in axes)):
                point = dict(self.base)
                point.update(dict(zip(axes, combo)))
                specs.extend(self._repeat(point))
        for extra in self.points:
            point = dict(self.base)
            point.update(extra)
            specs.extend(self._repeat(point))
        if not specs:
            raise ConfigurationError(
                f"campaign {self.name!r} expands to zero runs"
            )
        return specs

    def _repeat(self, point: Dict[str, Any]) -> Iterable[RunSpec]:
        return (
            _point_to_spec(point, seed=self.seed_base + rep)
            for rep in range(self.repetitions)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "points": [dict(p) for p in self.points],
            "repetitions": self.repetitions,
            "seed_base": self.seed_base,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        unknown = set(data) - {
            "name", "base", "grid", "points", "repetitions", "seed_base"
        }
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec keys: {sorted(unknown)}"
            )
        return cls(
            name=data.get("name", ""),
            base=dict(data.get("base") or {}),
            grid={k: list(v) for k, v in (data.get("grid") or {}).items()},
            points=[dict(p) for p in (data.get("points") or [])],
            repetitions=int(data.get("repetitions", 1)),
            seed_base=int(data.get("seed_base", 0)),
        )

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a campaign from a JSON file (see EXPERIMENTS.md)."""
        text = Path(path).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad campaign file {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"campaign file {path} must hold an object")
        return cls.from_dict(data)


def study_runspecs(
    app: str,
    app_args: Optional[Dict[str, Any]],
    node_counts: Sequence[int],
    networks: Sequence[str],
    ppns: Sequence[int],
    repetitions: int,
    seed_base: int,
) -> List[RunSpec]:
    """The scaling-study sweep as RunSpecs, in the study's own order.

    Unlike :meth:`CampaignSpec.expand` this preserves the historical
    ``network -> ppn -> nodes -> repetition`` nesting of
    :class:`repro.core.study.ScalingStudy`, so seeds and assembly order
    match the serial runner exactly.
    """
    args = tuple(sorted((app_args or {}).items()))
    return [
        RunSpec(
            app=app,
            network=network,
            nodes=nodes,
            ppn=ppn,
            seed=seed_base + rep,
            app_args=args,
        )
        for network in networks
        for ppn in ppns
        for nodes in node_counts
        for rep in range(repetitions)
    ]
