"""Content-addressed result cache for campaign runs.

Records live under ``<root>/<key[:2]>/<key>.json`` (two-level fan-out
keeps directories small for big campaigns).  Keys come from
:attr:`~.spec.RunSpec.key`, which folds in the package version, so a
model change silently invalidates every old entry without any explicit
versioning logic here.  Writes are atomic (temp file + rename) so a
killed campaign can never leave a truncated record behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional


class ResultCache:
    """Disk cache of run records, keyed by RunSpec content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None on miss or unreadable entry."""
        path = self.path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # Paranoia: a record filed under the wrong key is worse than a miss.
        if record.get("key") != key:
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically store one record."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def entries(self) -> Iterator[Path]:
        """Every cache file currently on disk."""
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def count(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        for sub in self.root.glob("*"):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
