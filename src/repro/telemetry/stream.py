"""Bounded event streams and span timelines.

:class:`EventStream` is the storage behind the legacy string
:class:`~repro.sim.trace.Tracer`: time-ordered ``(time, category,
message)`` tuples with **per-category** drop accounting once the record
limit is hit — a drowned-out category is visible as such, not folded
into one global number.

:class:`Timeline` records *spans* (named intervals on named tracks) and
*instants*, the raw material of the Chrome ``trace_event`` exporter.
Track ids are assigned in first-use order, which is simulation order and
therefore deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: One stream record: (simulation time, category, message).
StreamRecord = Tuple[float, str, str]

#: One timeline span: (track id, name, category, start us, duration us).
Span = Tuple[int, str, str, float, float]

#: One timeline instant: (track id, name, category, time us).
Instant = Tuple[int, str, str, float]


class EventStream:
    """Append-only bounded record store with per-category drop counts."""

    __slots__ = ("limit", "records", "dropped_by_category")

    def __init__(self, limit: int = 1_000_000) -> None:
        self.limit = limit
        self.records: List[StreamRecord] = []
        self.dropped_by_category: Dict[str, int] = {}

    def append(self, now: float, category: str, message: str) -> bool:
        """Store one record; returns False (and counts the drop) if full."""
        if len(self.records) >= self.limit:
            self.dropped_by_category[category] = (
                self.dropped_by_category.get(category, 0) + 1
            )
            return False
        self.records.append((now, category, message))
        return True

    @property
    def dropped(self) -> int:
        """Total records dropped across all categories."""
        total = 0
        for count in self.dropped_by_category.values():
            total += count
        return total

    def counts(self) -> Dict[str, int]:
        """Stored-record counts per category, sorted by category."""
        by_category: Dict[str, int] = {}
        for _, category, _ in self.records:
            by_category[category] = by_category.get(category, 0) + 1
        return dict(sorted(by_category.items()))

    def clear(self) -> None:
        """Drop all records and reset drop accounting."""
        self.records.clear()
        self.dropped_by_category.clear()

    def __len__(self) -> int:
        return len(self.records)


class Timeline:
    """Span/instant recorder feeding the Chrome ``trace_event`` export.

    A *track* is one horizontal lane in the viewer — a resource (a link,
    the PCI-X bus, a NIC engine, a CPU) or a protocol category.  Spans on
    the same track may overlap (multi-slot resources); the trace format
    allows it.
    """

    __slots__ = ("limit", "spans", "instants", "_tracks", "dropped_by_category")

    def __init__(self, limit: int = 1_000_000) -> None:
        self.limit = limit
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        #: track name -> tid, in first-use (simulation) order.
        self._tracks: Dict[str, int] = {}
        self.dropped_by_category: Dict[str, int] = {}

    @property
    def dropped(self) -> int:
        """Total records dropped at the cap, across categories."""
        total = 0
        for count in self.dropped_by_category.values():
            total += count
        return total

    def tid(self, track: str) -> int:
        """The stable integer id of ``track``, assigned on first use."""
        t = self._tracks.get(track)
        if t is None:
            t = self._tracks[track] = len(self._tracks)
        return t

    def span(
        self, track: str, name: str, category: str, start: float, duration: float
    ) -> None:
        """Record a completed interval on ``track``."""
        if len(self.spans) + len(self.instants) >= self.limit:
            self.dropped_by_category[category] = (
                self.dropped_by_category.get(category, 0) + 1
            )
            return
        self.spans.append((self.tid(track), name, category, start, duration))

    def instant(self, track: str, name: str, category: str, now: float) -> None:
        """Record a point event on ``track``."""
        if len(self.spans) + len(self.instants) >= self.limit:
            self.dropped_by_category[category] = (
                self.dropped_by_category.get(category, 0) + 1
            )
            return
        self.instants.append((self.tid(track), name, category, now))

    def track_names(self) -> List[str]:
        """All track names, in tid order."""
        return list(self._tracks)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)
