"""``repro-explain``: where did the time go, and whose fault is it?

``run`` executes one declarative app (the campaign registry) on a fresh
machine with lifecycle spans and series sampling enabled, then folds the
span graph into an *explanation*: the critical path through the run, a
per-component blame table (host / pcix / nic / link / switch / waiting /
app), a latency waterfall of mean per-phase time for every (kind, proto,
size) bucket, and the sampled occupancy series.  The result is written
as JSON and, optionally, as a self-contained HTML report (inline CSS and
SVG, no external assets) with stacked waterfall bars, the blame table,
and per-channel sparklines.

``diff`` compares the blame tables of two reports and exits non-zero
when any component's share of the critical path drifted past a
threshold — a shell-pipeline gate against "the optimization moved the
bottleneck" regressions, same spirit as ``repro-trace diff`` but over
*attribution* rather than raw metrics.

Examples::

    repro-explain run --app pingpong --network ib --nodes 2 \\
        --arg size=4194304 -o ib-4mb.json --html ib-4mb.html
    repro-explain run --app pingpong --network elan --nodes 2 \\
        --arg size=4194304 -o elan-4mb.json
    repro-explain diff ib-4mb.json elan-4mb.json --threshold 0.05
"""

from __future__ import annotations

import argparse
import html as _html
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError
from ..version import __version__
from .critical_path import blame, critical_path
from .lifecycle import matched_on_arrival_share

#: Fixed component palette so report colours are stable across runs.
_COMPONENT_COLORS = {
    "host": "#d9534f",
    "pcix": "#f0ad4e",
    "nic": "#5bc0de",
    "link": "#428bca",
    "switch": "#7b68ee",
    "waiting": "#999999",
    "app": "#cccccc",
}
_PHASE_FALLBACK = "#66aa88"

#: Critical-path segments included verbatim in the JSON report (the
#: trailing — latest — portion; the blame table covers the whole path).
_MAX_REPORT_SEGMENTS = 500


def waterfall(spans: Any) -> List[Dict[str, Any]]:
    """Mean per-phase time for every ``(kind, proto, size)`` bucket.

    The per-bucket phase dict is the latency *waterfall*: stacked, the
    bars show how a message of that shape spends its life.  Means are
    over all spans in the bucket; gap time (total minus the phase sum)
    is overlap-naive but a faithful "unattributed" residual.
    """
    buckets: Dict[tuple, Dict[str, Any]] = {}
    for span in spans:
        key = (span.kind, span.proto, span.size)
        b = buckets.get(key)
        if b is None:
            b = buckets[key] = {"count": 0, "total": 0.0, "phases": {}}
        b["count"] += 1
        b["total"] += span.end - span.t0
        phases = b["phases"]
        for name, t0, t1 in span.phases:
            phases[name] = phases.get(name, 0.0) + (t1 - t0)
    out: List[Dict[str, Any]] = []
    for key in sorted(buckets):
        kind, proto, size = key
        b = buckets[key]
        n = b["count"]
        out.append(
            {
                "kind": kind,
                "proto": proto,
                "size": size,
                "count": n,
                "mean_total_us": b["total"] / n,
                "phases": {
                    name: us / n for name, us in sorted(b["phases"].items())
                },
            }
        )
    return out


def build_report(machine, result, label: str = "") -> Dict[str, Any]:
    """The JSON-ready explanation of one finished run on ``machine``."""
    lifecycle = machine.sim.telemetry.lifecycle
    spans = list(lifecycle.spans)
    by_id = {s.id: s for s in spans}
    segments = critical_path(spans)
    return {
        "label": label or machine.label,
        "version": __version__,
        "network": machine.network,
        "n_nodes": machine.n_nodes,
        "ppn": machine.ppn,
        "elapsed_us": result.elapsed_us,
        "spans": len(spans),
        "dropped": lifecycle.summary(),
        "matched_on_arrival_share": matched_on_arrival_share(spans),
        "blame": blame(segments, by_id),
        "critical_path_segments": len(segments),
        "critical_path": [
            s.to_dict() for s in segments[-_MAX_REPORT_SEGMENTS:]
        ],
        "waterfall": waterfall(spans),
        "series": machine.series(),
        "metrics": result.metrics,
    }


# -- HTML rendering (no external assets, deterministic output) ---------------


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _color(name: str) -> str:
    from .lifecycle import component_of

    if name in _COMPONENT_COLORS:
        return _COMPONENT_COLORS[name]
    return _COMPONENT_COLORS.get(component_of(name), _PHASE_FALLBACK)


def _blame_rows(report: Dict[str, Any]) -> str:
    rows = []
    components = report["blame"]["components"]
    for name, entry in sorted(
        components.items(), key=lambda kv: -kv[1]["us"]
    ):
        pct = entry["share"] * 100.0
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class='num'>{entry['us']:.3f}</td>"
            f"<td class='num'>{pct:.1f}%</td>"
            f"<td><div class='bar' style='width:{pct:.1f}%;"
            f"background:{_color(name)}'></div></td></tr>"
        )
    return "".join(rows)


def _waterfall_rows(report: Dict[str, Any]) -> str:
    rows = []
    for bucket in report["waterfall"]:
        total = bucket["mean_total_us"]
        if total <= 0:
            continue
        parts = []
        explained = 0.0
        for name, us in bucket["phases"].items():
            width = 100.0 * us / total
            explained += us
            if width < 0.05:
                continue
            parts.append(
                f"<div class='seg' style='width:{width:.2f}%;"
                f"background:{_color(name)}' title='{_esc(name)}: "
                f"{us:.3f}us'></div>"
            )
        residual = total - explained
        if residual > 0 and 100.0 * residual / total >= 0.05:
            parts.append(
                f"<div class='seg' style='width:{100.0 * residual / total:.2f}%;"
                f"background:#eeeeee' title='unattributed: "
                f"{residual:.3f}us'></div>"
            )
        head = (
            f"{bucket['kind']}/{bucket['proto']} {bucket['size']}B "
            f"&times;{bucket['count']}"
        )
        rows.append(
            f"<tr><td>{head}</td><td class='num'>{total:.3f}</td>"
            f"<td><div class='stack'>{''.join(parts)}</div></td></tr>"
        )
    return "".join(rows)


def _sparkline(values: List[float], width: int = 220, height: int = 36) -> str:
    if not values:
        return ""
    vmax = max(values)
    if vmax <= 0:
        vmax = 1.0
    n = len(values)
    step = width / max(1, n - 1)
    points = " ".join(
        f"{i * step:.1f},{height - (v / vmax) * (height - 2) - 1:.1f}"
        for i, v in enumerate(values)
    )
    return (
        f"<svg width='{width}' height='{height}' class='spark'>"
        f"<polyline points='{points}' fill='none' stroke='#428bca' "
        f"stroke-width='1.2'/></svg>"
    )


def _series_rows(report: Dict[str, Any]) -> str:
    channels = report.get("series", {}).get("channels", {})
    rows = []
    for name in sorted(channels):
        values = channels[name]
        peak = max(values) if values else 0.0
        rows.append(
            f"<tr><td>{_esc(name)}</td><td class='num'>{peak:g}</td>"
            f"<td>{_sparkline(values)}</td></tr>"
        )
    return "".join(rows)


def build_html(report: Dict[str, Any]) -> str:
    """Render a report dict as one self-contained HTML page."""
    share = report.get("matched_on_arrival_share")
    share_text = f"{share:.3f}" if share is not None else "n/a"
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro-explain: {_esc(report['label'])}</title>
<style>
body {{ font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 960px; color: #222; }}
h1 {{ font-size: 1.4em; }} h2 {{ font-size: 1.1em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; width: 100%; }}
td, th {{ padding: 3px 8px; border-bottom: 1px solid #e5e5e5;
          text-align: left; vertical-align: middle; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
.bar {{ height: 11px; min-width: 1px; }}
.stack {{ display: flex; height: 14px; width: 100%; background: #fafafa; }}
.seg {{ height: 100%; }}
.meta {{ color: #666; }}
svg.spark {{ display: block; }}
</style></head><body>
<h1>repro-explain &mdash; {_esc(report['label'])}</h1>
<p class="meta">repro {_esc(report['version'])} &middot;
network {_esc(report['network'])} &middot;
{report['n_nodes']} nodes &times; {report['ppn']} ppn &middot;
elapsed {report['elapsed_us']:.2f}&micro;s &middot;
{report['spans']} spans &middot;
matched-on-arrival share {share_text}</p>
<h2>Critical-path blame</h2>
<p class="meta">total attributed: {report['blame']['total_us']:.3f}&micro;s
over {report['critical_path_segments']} segments</p>
<table><tr><th>component</th><th>&micro;s</th><th>share</th><th></th></tr>
{_blame_rows(report)}</table>
<h2>Latency waterfall (mean per message bucket)</h2>
<table><tr><th>bucket</th><th>mean &micro;s</th><th>phases</th></tr>
{_waterfall_rows(report)}</table>
<h2>Occupancy series</h2>
<table><tr><th>channel</th><th>peak</th><th></th></tr>
{_series_rows(report)}</table>
</body></html>
"""


# -- CLI ---------------------------------------------------------------------


def _parse_arg(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected name=value, got {text!r}")
    name, raw = text.split("=", 1)
    value: Any = raw
    for cast in (int, float):
        try:
            value = cast(raw)
            break
        except ValueError:
            continue
    return name, value


def cmd_run(args: argparse.Namespace) -> int:
    # Imported lazily so `diff` works on bare report files without
    # dragging the whole simulator stack in.
    from ..campaign.programs import build_program
    from ..mpi import Machine
    from .collect import Telemetry

    machine = Machine(
        args.network,
        args.nodes,
        ppn=args.ppn,
        seed=args.seed,
        telemetry=Telemetry(metrics=True, lifecycle=True, series=True),
    )
    result = machine.run(build_program(args.app, dict(args.arg or [])))
    label = args.label or (
        f"{args.app} {args.network} {args.nodes}n x{args.ppn}ppn "
        f"seed={args.seed}"
    )
    report = build_report(machine, result, label=label)
    Path(args.output).write_text(json.dumps(report, sort_keys=True))
    written = [str(args.output)]
    if args.html:
        Path(args.html).write_text(build_html(report))
        written.append(str(args.html))
    top = sorted(
        report["blame"]["components"].items(), key=lambda kv: -kv[1]["us"]
    )[:3]
    top_text = ", ".join(
        f"{name} {entry['share'] * 100:.1f}%" for name, entry in top
    )
    print(
        f"wrote {' + '.join(written)}: {report['spans']} spans, "
        f"elapsed {report['elapsed_us']:.2f}us, blame: {top_text or 'n/a'}"
    )
    return 0


def _report_of(path) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "blame" not in data:
        raise ReproError(f"{path} is not a repro-explain report")
    return data


def cmd_diff(args: argparse.Namespace) -> int:
    a, b = _report_of(args.a), _report_of(args.b)
    ca = a["blame"]["components"]
    cb = b["blame"]["components"]
    regressed = False
    for name in sorted(set(ca) | set(cb)):
        sa = ca.get(name, {}).get("share", 0.0)
        sb = cb.get(name, {}).get("share", 0.0)
        drift = sb - sa
        marker = ""
        if abs(drift) > args.threshold:
            regressed = True
            marker = "  <-- drift"
        print(
            f"{name:12s} {sa * 100:6.1f}% -> {sb * 100:6.1f}% "
            f"({drift * 100:+.1f}pp){marker}"
        )
    sha = a.get("matched_on_arrival_share")
    shb = b.get("matched_on_arrival_share")
    if sha is not None or shb is not None:
        print(
            f"matched-on-arrival share: "
            f"{sha if sha is not None else 'n/a'} -> "
            f"{shb if shb is not None else 'n/a'}"
        )
    if regressed:
        print(
            f"blame shares drifted past {args.threshold * 100:.1f}pp "
            f"({args.a} vs {args.b})"
        )
        return 1
    print("blame shares within threshold")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explain",
        description="Run a traced app and explain its critical path, or "
        "diff two explanations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one app with lifecycle tracing and write a report"
    )
    run.add_argument("--app", default="pingpong", help="campaign app id")
    run.add_argument("--network", default="ib", choices=("ib", "elan"))
    run.add_argument("--nodes", type=int, default=2)
    run.add_argument("--ppn", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--arg",
        action="append",
        type=_parse_arg,
        metavar="NAME=VALUE",
        help="app argument (repeatable), e.g. --arg size=4194304",
    )
    run.add_argument("--label", default="", help="report label")
    run.add_argument("-o", "--output", default="explain.json")
    run.add_argument("--html", default="", help="also write an HTML report")
    run.set_defaults(func=cmd_run)

    diff = sub.add_parser(
        "diff", help="compare the blame tables of two reports"
    )
    diff.add_argument("a")
    diff.add_argument("b")
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max tolerated per-component share drift (default 0.05)",
    )
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"repro-explain: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
