"""Structured observability for simulated runs.

The paper's claims are mechanism claims — protocol crossover points,
registration-cache thrash, NIC-thread matching, bus saturation — and
this package makes those mechanisms *numbers*:

* :class:`MetricsRegistry` — cheap named counters/gauges/histograms.
  Disabled registries hand out shared no-op instruments, so an
  untelemetered run pays one empty method call per event and allocates
  nothing.  Enabled contents are deterministic: same seed + same spec
  gives bit-identical metric dicts.
* :class:`Telemetry` — the per-simulator bundle (registry + optional
  span :class:`Timeline`), attached via ``Machine(...,
  telemetry=Telemetry(...))``.
* :func:`snapshot` — one flat JSON-ready dict per run: protocol
  counters, per-resource busy time / utilization / occupancy / queue
  high-water marks, per-store depths, kernel totals.
* :class:`LifecycleRecorder` / :class:`MessageSpan`
  (:mod:`~repro.telemetry.lifecycle`) — per-message spans: every phase a
  send or recv passes through, with dependency edges and fault
  annotations.
* :class:`SeriesBank` (:mod:`~repro.telemetry.series`) — deterministic
  virtual-time series of gauge-like values (bus occupancy, queue depth,
  credits outstanding, pinned bytes), resampled onto a Δt grid at export.
* :func:`critical_path` / :func:`blame`
  (:mod:`~repro.telemetry.critical_path`) — the longest dependency chain
  through the span graph and its per-component blame table.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON timelines (load in ``chrome://tracing`` or
  Perfetto), with the metrics dict embedded under ``otherData``.
* ``repro-trace`` (:mod:`repro.telemetry.cli`) — record / dump /
  summarize / diff traces from the shell.
* ``repro-explain`` (:mod:`repro.telemetry.explain`) — run a traced
  benchmark and render waterfall + blame analysis as JSON and HTML.

Telemetry never touches simulation behaviour: no events are scheduled,
no randomness is drawn, and enabling it leaves every simulated timing
bit-identical.
"""

from .chrome import chrome_trace, load_trace, validate_trace, write_chrome_trace
from .collect import DISABLED, Telemetry, snapshot
from .critical_path import Segment, blame, blame_of_spans, critical_path
from .lifecycle import (
    LifecycleRecorder,
    MessageSpan,
    NULL_LIFECYCLE,
    NULL_SPAN,
    component_of,
    matched_on_arrival_share,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .series import Channel, NULL_CHANNEL, NULL_SERIES, SeriesBank
from .stream import EventStream, Timeline

__all__ = [
    "Telemetry",
    "DISABLED",
    "snapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "EventStream",
    "Timeline",
    "MessageSpan",
    "LifecycleRecorder",
    "NULL_SPAN",
    "NULL_LIFECYCLE",
    "component_of",
    "matched_on_arrival_share",
    "Channel",
    "SeriesBank",
    "NULL_CHANNEL",
    "NULL_SERIES",
    "Segment",
    "critical_path",
    "blame",
    "blame_of_spans",
    "chrome_trace",
    "write_chrome_trace",
    "load_trace",
    "validate_trace",
]
