"""Structured observability for simulated runs.

The paper's claims are mechanism claims — protocol crossover points,
registration-cache thrash, NIC-thread matching, bus saturation — and
this package makes those mechanisms *numbers*:

* :class:`MetricsRegistry` — cheap named counters/gauges/histograms.
  Disabled registries hand out shared no-op instruments, so an
  untelemetered run pays one empty method call per event and allocates
  nothing.  Enabled contents are deterministic: same seed + same spec
  gives bit-identical metric dicts.
* :class:`Telemetry` — the per-simulator bundle (registry + optional
  span :class:`Timeline`), attached via ``Machine(...,
  telemetry=Telemetry(...))``.
* :func:`snapshot` — one flat JSON-ready dict per run: protocol
  counters, per-resource busy time / utilization / occupancy / queue
  high-water marks, per-store depths, kernel totals.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON timelines (load in ``chrome://tracing`` or
  Perfetto), with the metrics dict embedded under ``otherData``.
* ``repro-trace`` (:mod:`repro.telemetry.cli`) — record / dump /
  summarize / diff traces from the shell.

Telemetry never touches simulation behaviour: no events are scheduled,
no randomness is drawn, and enabling it leaves every simulated timing
bit-identical.
"""

from .chrome import chrome_trace, load_trace, validate_trace, write_chrome_trace
from .collect import DISABLED, Telemetry, snapshot
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .stream import EventStream, Timeline

__all__ = [
    "Telemetry",
    "DISABLED",
    "snapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "EventStream",
    "Timeline",
    "chrome_trace",
    "write_chrome_trace",
    "load_trace",
    "validate_trace",
]
