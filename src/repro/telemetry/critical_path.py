"""Critical-path extraction and per-component blame over message spans.

Given the completed span graph of a run, :func:`critical_path` walks
*backwards* from the last completion, at every step asking "what
explains the time just before ``t``?" and picking the latest of three
candidates:

* an **own phase** of the current span overlapping ``(..., t)`` — emit
  it (plus an unexplained ``wait`` gap if it ends short of ``t``);
* a **dependency edge** at ``t_e <= t`` — emit the edge's bridge label
  over ``[t_e, t]`` (the match / poll / go work between the producer's
  effect landing and this span's next own phase) and jump into the
  producer span;
* the span owner's **previous span** (``prev_id`` chain) — emit an
  ``app`` gap and continue there: the rank was busy with other work.

This is what lets waits stay implicit: a gap before an eager copy
becomes ``host_match`` time if the message had already arrived,
``app`` time if the receiver posted late, and ``wait`` only when
nothing explains it.  The walk terminates at the first span's posting
time; a segment budget guards against pathological graphs.

:func:`blame` folds the resulting segments into per-component and
per-phase totals.  Wire segments are split across
pcix / nic / link / switch using the stage-serialization breakdown note
the network layer attaches to each span (``wb:wire:*``), so "wire time"
is not a black box — PCI-X DMA, NIC engines, link serialization and
switch crossings are charged separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from .lifecycle import MessageSpan, component_of

#: Time comparison slack, well below any modelled cost (us).
EPS = 1e-9

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class Segment:
    """One critical-path piece: ``phase`` of span ``span_id`` on rank
    ``owner`` covering ``[start, end]``."""

    span_id: int
    owner: int
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span_id,
            "owner": self.owner,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
        }


def critical_path(
    spans: Iterable[MessageSpan],
    end_span: Optional[MessageSpan] = None,
    max_segments: int = 250_000,
) -> List[Segment]:
    """The longest dependency chain ending at ``end_span`` (default: the
    last span to complete), as time-ordered segments."""
    pool = [s for s in spans if s.live]
    if not pool:
        return []
    by_id = {s.id: s for s in pool}
    cur = end_span or max(pool, key=lambda s: (s.end, s.id))
    t = cur.end
    segments: List[Segment] = []
    # Iteration bound besides the segment budget: a handful of steps make
    # no progress in time (same-instant hops between overlapping spans),
    # and candidate times are clipped to t below precisely so such hops
    # resolve by priority instead of cycling — but a hard stop keeps even
    # an adversarial graph finite.
    steps = 4 * max_segments
    while len(segments) < max_segments and steps > 0:
        steps -= 1
        # Candidate 1: the latest own phase active strictly before t.
        best_phase = None
        e_phase = _NEG_INF
        for ph in cur.phases:
            if ph[1] < t - EPS:
                e = ph[2] if ph[2] < t else t
                if e > e_phase:
                    e_phase, best_phase = e, ph
        # Candidate 2: the latest dependency edge at or before t.
        best_edge = None
        e_edge = _NEG_INF
        for ed in cur.edges:
            if ed[0] <= t + EPS and ed[0] > e_edge and ed[1] in by_id:
                e_edge, best_edge = ed[0], ed
        if e_edge > t:
            e_edge = t
        # Candidate 3: the rank's previous span.  A previous span still
        # running at t explains everything up to t — clip, don't let a
        # later completion time outrank candidates that actually end here.
        prev = by_id.get(cur.prev_id)
        e_prev = prev.end if prev is not None else _NEG_INF
        if e_prev > t:
            e_prev = t

        if best_phase is not None and e_phase >= e_edge - EPS and e_phase >= e_prev - EPS:
            if e_phase < t - EPS:
                segments.append(Segment(cur.id, cur.owner, "wait", e_phase, t))
            name, start, _ = best_phase
            if e_phase > start + EPS:
                segments.append(Segment(cur.id, cur.owner, name, start, e_phase))
            t = start
            continue
        if best_edge is not None and e_edge >= e_prev - EPS:
            te, dep_id, label = best_edge
            if te < t - EPS:
                segments.append(Segment(cur.id, cur.owner, label, te, t))
            cur = by_id[dep_id]
            t = te if te < t else t
            continue
        if prev is not None:
            if e_prev < t - EPS:
                segments.append(Segment(cur.id, cur.owner, "app", e_prev, t))
            cur = prev
            t = e_prev if e_prev < t else t
            continue
        # First span of its rank: whatever remains is pre-span time.
        if t > cur.t0 + EPS:
            segments.append(Segment(cur.id, cur.owner, "wait", cur.t0, t))
        break
    segments.reverse()
    return segments


def blame(
    segments: Iterable[Segment],
    spans_by_id: Optional[Dict[int, MessageSpan]] = None,
) -> Dict[str, Any]:
    """Fold critical-path segments into component and phase blame tables.

    Components: host / pcix / nic / link / switch / waiting / app.  Wire
    segments split across pcix/nic/link/switch via the span's
    ``wb:wire:*`` note when present (else all link).  Shares sum to 1.0
    over the path's total duration.
    """
    spans_by_id = spans_by_id or {}
    comp: Dict[str, float] = {}
    phases: Dict[str, float] = {}
    for seg in segments:
        dur = seg.end - seg.start
        if dur <= 0:
            continue
        phases[seg.phase] = phases.get(seg.phase, 0.0) + dur
        breakdown = None
        if seg.phase.startswith("wire:"):
            span = spans_by_id.get(seg.span_id)
            if span is not None:
                breakdown = span.notes.get("wb:" + seg.phase)
        if breakdown:
            for name, share in breakdown.items():
                comp[name] = comp.get(name, 0.0) + dur * share
        else:
            name = component_of(seg.phase)
            comp[name] = comp.get(name, 0.0) + dur
    # Summed in sorted key order so float rounding is iteration-order-free.
    total = 0.0
    for name in sorted(comp):
        total += comp[name]
    scale = total if total > 0 else 1.0
    return {
        "total_us": total,
        "components": {
            name: {"us": us, "share": us / scale}
            for name, us in sorted(comp.items())
        },
        "phases": {
            name: {"us": us, "share": us / scale}
            for name, us in sorted(phases.items())
        },
    }


def blame_of_spans(spans: Iterable[MessageSpan]) -> Dict[str, Any]:
    """Convenience: critical path + blame of a span collection."""
    pool = [s for s in spans if s.live]
    by_id = {s.id: s for s in pool}
    return blame(critical_path(pool), by_id)
