"""Chrome ``trace_event`` JSON export.

Builds the *JSON Object Format* of the Trace Event specification (the
format ``chrome://tracing`` and Perfetto load): a ``traceEvents`` array
of complete (``ph: "X"``), instant (``ph: "i"``) and metadata
(``ph: "M"``) events, plus an ``otherData`` object carrying the run's
flat metrics dict so one file holds both the timeline and the numbers.

Event sources:

* :class:`~.stream.Timeline` spans/instants — resource occupancy
  intervals recorded by :class:`~repro.sim.FifoResource`;
* :class:`~.lifecycle.LifecycleRecorder` message spans — one complete
  event per recorded phase, on one track per owning rank;
* :class:`~.series.SeriesBank` channels — counter (``ph: "C"``) events,
  one track per channel, so gauge history renders as area charts;
* legacy :class:`~repro.sim.Tracer` records — protocol events, exported
  as instants on one track per category.

Simulation time is microseconds, which is exactly the ``ts`` unit the
trace format expects — timestamps pass through unscaled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..version import __version__
from .collect import snapshot

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator, Tracer

#: The single process id used for the whole simulated machine.
PID = 0


def chrome_trace(
    sim: "Simulator",
    tracer: Optional["Tracer"] = None,
    label: str = "",
) -> Dict[str, Any]:
    """Build the trace dict for one finished simulation.

    Includes whatever was collected: timeline spans if the simulator's
    telemetry has one, tracer records if a tracer is given, and always
    the metrics snapshot under ``otherData.metrics``.
    """
    events: List[Dict[str, Any]] = []
    tracks: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        t = tracks.get(track)
        if t is None:
            t = tracks[track] = len(tracks)
        return t

    timeline = sim.telemetry.timeline
    if timeline is not None:
        # Adopt the timeline's track order so tids stay deterministic.
        for track in timeline.track_names():
            tid_of(track)
        for tid, name, cat, start, dur in timeline.spans:
            events.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": start,
                    "dur": dur,
                    "pid": PID,
                    "tid": tid,
                }
            )
        for tid, name, cat, ts in timeline.instants:
            events.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": PID,
                    "tid": tid,
                }
            )
    lifecycle = sim.telemetry.lifecycle
    if lifecycle.enabled:
        for span in lifecycle.spans:
            track = f"msg.r{span.owner}"
            tid = tid_of(track)
            for phase, t0, t1 in span.phases:
                events.append(
                    {
                        "name": phase,
                        "cat": f"lifecycle.{span.kind}.{span.proto}",
                        "ph": "X",
                        "ts": t0,
                        "dur": t1 - t0,
                        "pid": PID,
                        "tid": tid,
                        "args": {"span": span.id, "size": span.size},
                    }
                )
    series = sim.telemetry.series
    if series.enabled:
        for name in sorted(series.channels):
            tid = tid_of(f"series.{name}")
            for ts, value in series.channels[name].points:
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": ts,
                        "pid": PID,
                        "tid": tid,
                        "args": {"value": value},
                    }
                )
    if tracer is not None:
        for ts, category, message in tracer.records:
            events.append(
                {
                    "name": category,
                    "cat": category,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": PID,
                    "tid": tid_of(f"trace.{category}"),
                    "args": {"message": message},
                }
            )
    metadata: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": PID,
            "tid": 0,
            "args": {"name": label or "repro-sim"},
        }
    ]
    for track, tid in tracks.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    dropped: Dict[str, Any] = {
        "lifecycle": dict(sorted(lifecycle.dropped_by_category.items())),
        "series": dict(sorted(series.dropped_by_channel.items())),
        "timeline": (
            dict(sorted(timeline.dropped_by_category.items()))
            if timeline is not None
            else {}
        ),
    }
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "version": __version__,
            "metrics": snapshot(sim),
            "dropped": dropped,
        },
    }


def write_chrome_trace(
    path,
    sim: "Simulator",
    tracer: Optional["Tracer"] = None,
    label: str = "",
) -> Dict[str, Any]:
    """Export :func:`chrome_trace` to ``path``; returns the trace dict."""
    trace = chrome_trace(sim, tracer=tracer, label=label)
    Path(path).write_text(json.dumps(trace, sort_keys=True))
    return trace


def load_trace(path) -> Dict[str, Any]:
    """Load and shape-check a trace file written by this exporter."""
    data = json.loads(Path(path).read_text())
    validate_trace(data)
    return data


#: Keys every event must carry, per the trace_event JSON object format.
_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_trace(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` has the trace_event shape."""
    if not isinstance(data, dict):
        raise ValueError("trace must be a JSON object")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace is missing the traceEvents array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"traceEvents[{i}] is missing {key!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}]: complete event needs dur >= 0"
                )
