"""The per-simulator telemetry bundle and the metrics snapshot.

One :class:`Telemetry` object rides on each :class:`~repro.sim.Simulator`
(``sim.telemetry``).  It bundles the four collection surfaces:

* ``metrics`` — a :class:`~.registry.MetricsRegistry` (or the shared
  null registry when disabled) fed by the protocol models;
* ``timeline`` — a :class:`~.stream.Timeline` (or ``None``) fed by
  resource occupancy spans, for the Chrome trace exporter;
* ``lifecycle`` — a :class:`~.lifecycle.LifecycleRecorder` (or the
  shared null recorder) of per-message protocol-phase spans;
* ``series`` — a :class:`~.series.SeriesBank` (or the shared null bank)
  of change-driven occupancy/gauge channels, resampled onto a Δt grid
  at export.

:func:`snapshot` flattens everything observable about a finished run —
registry instruments, per-resource busy/utilization/queue statistics,
per-store depth high-water marks, kernel totals — into one sorted,
JSON-ready dict.  Resource statistics are tracked unconditionally (they
predate telemetry and cost a few float ops per grant), so a snapshot is
meaningful even on a machine with no registry attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union

from .lifecycle import LifecycleRecorder, NULL_LIFECYCLE, _NullLifecycle
from .registry import MetricsRegistry, NULL_REGISTRY, NullRegistry
from .series import NULL_SERIES, SeriesBank, _NullSeries
from .stream import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

Number = Union[int, float]


class Telemetry:
    """Observability configuration + state for one simulated machine."""

    def __init__(
        self,
        metrics: bool = True,
        timeline: bool = False,
        timeline_limit: int = 1_000_000,
        lifecycle: bool = False,
        lifecycle_limit: int = 200_000,
        series: bool = False,
        series_limit: int = 500_000,
    ) -> None:
        self.metrics: Union[MetricsRegistry, NullRegistry] = (
            MetricsRegistry() if metrics else NULL_REGISTRY
        )
        self.timeline: Optional[Timeline] = (
            Timeline(timeline_limit) if timeline else None
        )
        self.lifecycle: Union[LifecycleRecorder, _NullLifecycle] = (
            LifecycleRecorder(lifecycle_limit) if lifecycle else NULL_LIFECYCLE
        )
        self.series: Union[SeriesBank, _NullSeries] = (
            SeriesBank(series_limit) if series else NULL_SERIES
        )

    @property
    def enabled(self) -> bool:
        """Whether any collection surface is live."""
        return (
            self.metrics.enabled
            or self.timeline is not None
            or self.lifecycle.enabled
            or self.series.enabled
        )


#: The shared disabled bundle a plain ``Simulator()`` uses.  Stateless —
#: registry, lifecycle and series are the null singletons and it has no
#: timeline — so every untelemetered simulator can safely share it.
DISABLED = Telemetry(metrics=False, timeline=False)


def snapshot(sim: "Simulator") -> Dict[str, Number]:
    """Flat, sorted, JSON-ready metrics for one simulator.

    Keys:

    * ``<instrument name>`` — every registry counter/gauge/histogram
      (histograms expand to ``.count/.sum/.min/.max/.mean``);
    * ``resource.<name>.busy_us / .utilization / .occupancy / .grants /
      .wait_us / .queue_hwm / .in_use_hwm`` — every named
      :class:`~repro.sim.FifoResource` (links, buses, engines, CPUs);
    * ``store.<name>.puts / .depth_hwm`` — every named
      :class:`~repro.sim.Store` (delivery queues);
    * ``sim.time_us / sim.events`` — kernel totals.

    Two runs with the same seed and spec produce bit-identical dicts.
    """
    out: Dict[str, Number] = dict(sim.telemetry.metrics.as_dict())
    elapsed = sim.now
    for res in sim.resources:
        if not res.name:
            continue
        prefix = f"resource.{res.name}"
        busy = res.busy_time
        if res._busy_since is not None:
            busy += elapsed - res._busy_since
        out[f"{prefix}.busy_us"] = busy
        out[f"{prefix}.utilization"] = res.utilization(elapsed)
        out[f"{prefix}.occupancy"] = res.occupancy(elapsed)
        out[f"{prefix}.grants"] = res.total_grants
        out[f"{prefix}.wait_us"] = res.total_wait_time
        out[f"{prefix}.queue_hwm"] = res.queue_hwm
        out[f"{prefix}.in_use_hwm"] = res.in_use_hwm
    for store in sim.stores:
        if not store.name:
            continue
        out[f"store.{store.name}.puts"] = store.total_puts
        out[f"store.{store.name}.depth_hwm"] = store.depth_hwm
    out["sim.time_us"] = elapsed
    out["sim.events"] = sim.events_processed
    return dict(sorted(out.items()))
