"""The per-simulator telemetry bundle and the metrics snapshot.

One :class:`Telemetry` object rides on each :class:`~repro.sim.Simulator`
(``sim.telemetry``).  It bundles the two collection surfaces:

* ``metrics`` — a :class:`~.registry.MetricsRegistry` (or the shared
  null registry when disabled) fed by the protocol models;
* ``timeline`` — a :class:`~.stream.Timeline` (or ``None``) fed by
  resource occupancy spans, for the Chrome trace exporter.

:func:`snapshot` flattens everything observable about a finished run —
registry instruments, per-resource busy/utilization/queue statistics,
per-store depth high-water marks, kernel totals — into one sorted,
JSON-ready dict.  Resource statistics are tracked unconditionally (they
predate telemetry and cost a few float ops per grant), so a snapshot is
meaningful even on a machine with no registry attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union

from .registry import MetricsRegistry, NULL_REGISTRY, NullRegistry
from .stream import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

Number = Union[int, float]


class Telemetry:
    """Observability configuration + state for one simulated machine."""

    def __init__(
        self,
        metrics: bool = True,
        timeline: bool = False,
        timeline_limit: int = 1_000_000,
    ) -> None:
        self.metrics: Union[MetricsRegistry, NullRegistry] = (
            MetricsRegistry() if metrics else NULL_REGISTRY
        )
        self.timeline: Optional[Timeline] = (
            Timeline(timeline_limit) if timeline else None
        )

    @property
    def enabled(self) -> bool:
        """Whether any collection surface is live."""
        return self.metrics.enabled or self.timeline is not None


#: The shared disabled bundle a plain ``Simulator()`` uses.  Stateless —
#: its registry is the null singleton and it has no timeline — so every
#: untelemetered simulator can safely share it.
DISABLED = Telemetry(metrics=False, timeline=False)


def snapshot(sim: "Simulator") -> Dict[str, Number]:
    """Flat, sorted, JSON-ready metrics for one simulator.

    Keys:

    * ``<instrument name>`` — every registry counter/gauge/histogram
      (histograms expand to ``.count/.sum/.min/.max/.mean``);
    * ``resource.<name>.busy_us / .utilization / .occupancy / .grants /
      .wait_us / .queue_hwm / .in_use_hwm`` — every named
      :class:`~repro.sim.FifoResource` (links, buses, engines, CPUs);
    * ``store.<name>.puts / .depth_hwm`` — every named
      :class:`~repro.sim.Store` (delivery queues);
    * ``sim.time_us / sim.events`` — kernel totals.

    Two runs with the same seed and spec produce bit-identical dicts.
    """
    out: Dict[str, Number] = dict(sim.telemetry.metrics.as_dict())
    elapsed = sim.now
    for res in sim.resources:
        if not res.name:
            continue
        prefix = f"resource.{res.name}"
        busy = res.busy_time
        if res._busy_since is not None:
            busy += elapsed - res._busy_since
        out[f"{prefix}.busy_us"] = busy
        out[f"{prefix}.utilization"] = res.utilization(elapsed)
        out[f"{prefix}.occupancy"] = res.occupancy(elapsed)
        out[f"{prefix}.grants"] = res.total_grants
        out[f"{prefix}.wait_us"] = res.total_wait_time
        out[f"{prefix}.queue_hwm"] = res.queue_hwm
        out[f"{prefix}.in_use_hwm"] = res.in_use_hwm
    for store in sim.stores:
        if not store.name:
            continue
        out[f"store.{store.name}.puts"] = store.total_puts
        out[f"store.{store.name}.depth_hwm"] = store.depth_hwm
    out["sim.time_us"] = elapsed
    out["sim.events"] = sim.events_processed
    return dict(sorted(out.items()))
