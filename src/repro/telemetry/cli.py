"""``repro-trace`` console script: record / dump / summarize / diff.

``record`` runs one declarative app (the campaign app registry) on a
fresh telemetered machine and writes a Chrome ``trace_event`` JSON file;
``dump`` prints a trace's events as text, ``summarize`` aggregates one
(per-category counts, per-track busy time, the metrics dict), and
``diff`` compares the embedded metrics dicts of two traces — exit code 1
when they differ, which makes it a regression gate in shell pipelines.

Examples::

    repro-trace record --app pingpong --network ib --nodes 2 \\
        --arg size=4194304 -o ib-4mb.json
    repro-trace summarize ib-4mb.json
    repro-trace diff ib-4mb.json elan-4mb.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError
from .chrome import load_trace


def _parse_arg(text: str) -> tuple:
    """One ``--arg name=value`` pair, value coerced to int/float if possible."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected name=value, got {text!r}")
    name, raw = text.split("=", 1)
    value: Any = raw
    for cast in (int, float):
        try:
            value = cast(raw)
            break
        except ValueError:
            continue
    return name, value


def cmd_record(args: argparse.Namespace) -> int:
    # Imported lazily: dump/summarize/diff work on bare trace files
    # without dragging the whole simulator stack in.
    from ..campaign.programs import build_program
    from ..mpi import Machine
    from ..sim import Tracer
    from .chrome import write_chrome_trace
    from .collect import Telemetry

    app_args = dict(args.arg or [])
    tracer = Tracer(enabled=True)
    machine = Machine(
        args.network,
        args.nodes,
        ppn=args.ppn,
        seed=args.seed,
        trace=tracer,
        telemetry=Telemetry(metrics=True, timeline=True),
    )
    result = machine.run(build_program(args.app, app_args))
    label = args.label or (
        f"{args.app} {args.network} {args.nodes}n x{args.ppn}ppn "
        f"seed={args.seed}"
    )
    trace = write_chrome_trace(args.output, machine.sim, tracer=tracer, label=label)
    metrics = trace["otherData"]["metrics"]
    print(
        f"wrote {args.output}: {len(trace['traceEvents'])} events, "
        f"{len(metrics)} metrics, elapsed {result.elapsed_us:.2f}us"
    )
    return 0


def _events(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [e for e in trace["traceEvents"] if e.get("ph") != "M"]


def _track_names(trace: Dict[str, Any]) -> Dict[int, str]:
    names = {}
    for event in trace["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event["tid"]] = event["args"]["name"]
    return names


def cmd_dump(args: argparse.Namespace) -> int:
    trace = load_trace(args.file)
    tracks = _track_names(trace)
    shown = 0
    for event in sorted(_events(trace), key=lambda e: (e["ts"], e["tid"])):
        if args.category and event.get("cat") != args.category:
            continue
        if args.limit and shown >= args.limit:
            print("...")
            break
        shown += 1
        track = tracks.get(event["tid"], str(event["tid"]))
        if event["ph"] == "X":
            body = f"dur={event['dur']:.3f}us"
        else:
            body = event.get("args", {}).get("message", "")
        print(
            f"{event['ts']:12.3f} {event['ph']} {track:24s} "
            f"{event.get('cat', '')}: {body}"
        )
    return 0


def cmd_summarize(args: argparse.Namespace) -> int:
    trace = load_trace(args.file)
    other = trace.get("otherData", {})
    events = _events(trace)
    tracks = _track_names(trace)
    print(f"trace: {args.file}")
    if other.get("label"):
        print(f"label: {other['label']} (repro {other.get('version', '?')})")
    by_cat: Dict[str, int] = {}
    busy: Dict[int, float] = {}
    for event in events:
        cat = event.get("cat", "")
        by_cat[cat] = by_cat.get(cat, 0) + 1
        if event["ph"] == "X":
            busy[event["tid"]] = busy.get(event["tid"], 0.0) + event["dur"]
    print(f"events: {len(events)} across {len(by_cat)} categories")
    for cat, count in sorted(by_cat.items()):
        print(f"  {cat:32s} {count}")
    if busy:
        print("busy time per track (top 10):")
        top = sorted(busy.items(), key=lambda kv: -kv[1])[:10]
        for tid, total in top:
            print(f"  {tracks.get(tid, str(tid)):32s} {total:.3f}us")
    if args.top:
        slow = sorted(
            (e for e in events if e["ph"] == "X"),
            key=lambda e: (-e["dur"], e["ts"], e["tid"]),
        )[: args.top]
        print(f"slowest {len(slow)} spans:")
        for event in slow:
            track = tracks.get(event["tid"], str(event["tid"]))
            print(
                f"  {event['dur']:12.3f}us {track:24s} "
                f"{event.get('cat', '')}: {event['name']} @ {event['ts']:.3f}"
            )
    if args.phase:
        hist: Dict[tuple, List[float]] = {}
        for event in events:
            if event["ph"] != "X":
                continue
            hist.setdefault((event.get("cat", ""), event["name"]), []).append(
                event["dur"]
            )
        print(f"phase histogram: {len(hist)} (category, name) cells")
        for (cat, name), durs in sorted(hist.items()):
            total = sum(durs)
            print(
                f"  {cat:28s} {name:20s} n={len(durs):6d} "
                f"total={total:12.3f}us mean={total / len(durs):10.3f}us "
                f"max={max(durs):10.3f}us"
            )
    dropped = other.get("dropped") or {}
    if any(dropped.values()):
        print("dropped records (cap hit):")
        for source, by_cat in sorted(dropped.items()):
            for cat, count in sorted(by_cat.items()):
                print(f"  {source}.{cat}: {count}")
    metrics = other.get("metrics") or {}
    if metrics:
        print(f"metrics: {len(metrics)}")
        for name, value in sorted(metrics.items()):
            print(f"  {name} = {value}")
    return 0


def _metrics_of(path) -> Dict[str, Any]:
    data = json.loads(open(path).read())
    if isinstance(data, dict) and "traceEvents" in data:
        return (data.get("otherData") or {}).get("metrics") or {}
    if isinstance(data, dict):
        return data  # a bare metrics dict is also accepted
    raise ReproError(f"{path} holds neither a trace nor a metrics dict")


def cmd_diff(args: argparse.Namespace) -> int:
    a, b = _metrics_of(args.a), _metrics_of(args.b)
    changed = False
    for name in sorted(set(a) | set(b)):
        if name not in a:
            print(f"+ {name} = {b[name]}")
            changed = True
        elif name not in b:
            print(f"- {name} = {a[name]}")
            changed = True
        elif a[name] != b[name]:
            print(f"~ {name}: {a[name]} -> {b[name]}")
            changed = True
    if not changed:
        print(f"identical: {len(a)} metrics match")
    return 1 if changed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record and inspect Chrome trace_event exports of "
        "simulated runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run one app and export its trace")
    rec.add_argument("--app", default="pingpong", help="campaign app id")
    rec.add_argument("--network", default="ib", choices=("ib", "elan"))
    rec.add_argument("--nodes", type=int, default=2)
    rec.add_argument("--ppn", type=int, default=1)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument(
        "--arg",
        action="append",
        type=_parse_arg,
        metavar="NAME=VALUE",
        help="app argument (repeatable), e.g. --arg size=4194304",
    )
    rec.add_argument("--label", default="", help="trace label")
    rec.add_argument("-o", "--output", default="trace.json")
    rec.set_defaults(func=cmd_record)

    dump = sub.add_parser("dump", help="print a trace's events as text")
    dump.add_argument("file")
    dump.add_argument("--category", default="", help="only this category")
    dump.add_argument("--limit", type=int, default=0, help="max events (0=all)")
    dump.set_defaults(func=cmd_dump)

    summ = sub.add_parser("summarize", help="aggregate one trace")
    summ.add_argument("file")
    summ.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also list the N slowest complete events",
    )
    summ.add_argument(
        "--phase",
        action="store_true",
        help="also print a per-(category, name) duration histogram",
    )
    summ.set_defaults(func=cmd_summarize)

    diff = sub.add_parser(
        "diff", help="compare the metrics dicts of two traces"
    )
    diff.add_argument("a")
    diff.add_argument("b")
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
