"""Cheap, deterministic metric instruments.

A :class:`MetricsRegistry` hands out named counters, gauges and
histograms.  Design constraints, in order:

* **Zero overhead when disabled.**  Model code fetches its instruments
  once (at construction) from ``sim.metrics``; a disabled simulator hands
  back module-level null singletons whose methods are empty — the hot
  path pays one no-op method call and allocates nothing.
* **Deterministic contents when enabled.**  Instruments hold plain
  Python numbers fed exclusively by the deterministic simulation, and
  :meth:`MetricsRegistry.as_dict` exports them sorted by name — two runs
  with the same seed and spec produce bit-identical dicts, serial or
  parallel, in any process.
* **JSON-ready.**  Exported values are ints/floats only, so a metrics
  dict drops straight into campaign journals and Chrome traces.

Instrument names are dotted paths (``mvapich.reg_cache.misses``); the
registry enforces one kind per name so an export can never collide.
"""

from __future__ import annotations

from typing import Dict, Union

from ..errors import ConfigurationError

Number = Union[int, float]


class Counter:
    """A monotonically-increasing tally (float increments allowed)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the tally."""
        self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("value", "hwm")

    def __init__(self) -> None:
        self.value: Number = 0
        self.hwm: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value, tracking the maximum ever seen."""
        self.value = value
        if value > self.hwm:
            self.hwm = value


class Histogram:
    """Streaming summary of observations: count/sum/min/max.

    No buckets — count, sum and extrema are what the regression tests
    and reports need, and they stay exact and deterministic.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Average observation (0.0 before the first observe)."""
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value: Number = 0
    hwm: Number = 0

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def observe(self, value: Number) -> None:
        pass


#: The singletons a :class:`NullRegistry` returns — every call site in a
#: disabled simulation shares these three objects.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name-addressed instrument store for one simulated machine."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _claim(self, name: str, kind: Dict) -> None:
        if not name:
            raise ConfigurationError("metric name cannot be empty")
        for store in (self._counters, self._gauges, self._histograms):
            if store is not kind and name in store:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first request."""
        c = self._counters.get(name)
        if c is None:
            self._claim(name, self._counters)
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first request."""
        g = self._gauges.get(name)
        if g is None:
            self._claim(name, self._gauges)
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first request."""
        h = self._histograms.get(name)
        if h is None:
            self._claim(name, self._histograms)
            h = self._histograms[name] = Histogram()
        return h

    def as_dict(self) -> Dict[str, Number]:
        """Flat ``{name: number}`` export, sorted by name.

        Histograms expand to ``name.count/.sum/.min/.max/.mean``; gauges
        to ``name`` and ``name.hwm``.  Sorted insertion makes the dict —
        and its JSON serialization — bit-identical across runs.
        """
        out: Dict[str, Number] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
            out[f"{name}.hwm"] = g.hwm
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.sum"] = h.total
            out[f"{name}.min"] = h.min
            out[f"{name}.max"] = h.max
            out[f"{name}.mean"] = h.mean
        return dict(sorted(out.items()))

    def clear(self) -> None:
        """Forget every instrument (tests only)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class NullRegistry:
    """The disabled registry: hands out shared no-op instruments.

    Stateless, so one module-level instance (:data:`NULL_REGISTRY`) is
    shared by every untelemetered simulator.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def as_dict(self) -> Dict[str, Number]:
        return {}

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The shared disabled registry.
NULL_REGISTRY = NullRegistry()
