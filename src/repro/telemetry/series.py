"""Deterministic virtual-time series sampling.

The simulator's clock only advances at events, so a wall-clock-style
polling sampler is impossible (and a periodic wakeup process would stop
``run_all`` from ever draining its heap).  Instead each observed value —
a resource's in-use count, a store's depth, credits outstanding, the
registration cache's pinned bytes — is a *channel* recording
change-driven ``(time, value)`` points, and :meth:`SeriesBank.sampled`
resamples every channel onto a common Δt grid at export time with
step-function (sample-and-hold) semantics.  Points are appended in
simulation order, so two runs with the same seed produce byte-identical
series, serial or parallel.

Like the metrics registry and the lifecycle recorder, the disabled form
is a pair of shared null singletons: model code fetches its channel once
at construction (``sim.telemetry.series.channel(...)``) and calls
``record`` unconditionally — one empty method call, zero allocation,
when sampling is off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: One change point: (simulation time us, value).
Point = Tuple[float, float]


class Channel:
    """One sampled quantity: change-driven points, deduplicated by value."""

    __slots__ = ("name", "points", "_bank")

    def __init__(self, name: str, bank: "SeriesBank") -> None:
        self.name = name
        self.points: List[Point] = []
        self._bank = bank

    def record(self, now: float, value: float) -> None:
        """Record ``value`` at ``now``; no-op if the value is unchanged."""
        points = self.points
        if points:
            last_t, last_v = points[-1]
            if last_v == value:
                return
            if last_t == now:
                # Same-instant update: keep only the final value so the
                # step function stays single-valued.
                points[-1] = (now, value)
                return
        bank = self._bank
        if bank.total_points >= bank.limit:
            bank.dropped_by_channel[self.name] = (
                bank.dropped_by_channel.get(self.name, 0) + 1
            )
            return
        points.append((now, value))
        bank.total_points += 1

    def value_at(self, t: float) -> float:
        """Step-function value at time ``t`` (0.0 before the first point)."""
        value = 0.0
        for pt, pv in self.points:
            if pt > t:
                break
            value = pv
        return value

    def __len__(self) -> int:
        return len(self.points)


class _NullChannel:
    """Shared inert channel for disabled sampling."""

    __slots__ = ()

    name = ""
    points: Tuple[Point, ...] = ()

    def record(self, now: float, value: float) -> None:
        pass

    def value_at(self, t: float) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0


NULL_CHANNEL = _NullChannel()


class SeriesBank:
    """All channels of one simulator, with a shared bounded point budget."""

    __slots__ = ("limit", "channels", "total_points", "dropped_by_channel")

    enabled = True

    def __init__(self, limit: int = 500_000) -> None:
        self.limit = limit
        #: name -> Channel, in first-use (simulation) order.
        self.channels: Dict[str, Channel] = {}
        self.total_points = 0
        self.dropped_by_channel: Dict[str, int] = {}

    def channel(self, name: str) -> Channel:
        """The channel called ``name``, created on first use."""
        ch = self.channels.get(name)
        if ch is None:
            ch = self.channels[name] = Channel(name, self)
        return ch

    @property
    def dropped(self) -> int:
        """Total points dropped at the cap, across channels."""
        total = 0
        for count in self.dropped_by_channel.values():
            total += count
        return total

    def sampled(
        self,
        t_end: float,
        dt: float = 0.0,
        points: int = 200,
    ) -> Dict[str, Any]:
        """Every channel resampled onto a common grid ``0, dt, 2dt, ...``.

        ``dt`` of 0 derives the step from ``points`` samples across
        ``[0, t_end]``.  Values use sample-and-hold: each grid point
        carries the channel's value at that instant.  The result is
        JSON-ready and byte-identical across runs of the same seed.
        """
        if dt <= 0.0:
            dt = (t_end / points) if t_end > 0 and points > 0 else 1.0
        n = int(t_end / dt) + 1 if t_end > 0 else 1
        out: Dict[str, Any] = {
            "dt_us": dt,
            "t_end_us": t_end,
            "samples": n,
            "channels": {},
        }
        for name in sorted(self.channels):
            pts = self.channels[name].points
            values: List[float] = []
            value = 0.0
            i = 0
            npts = len(pts)
            for k in range(n):
                t = k * dt
                while i < npts and pts[i][0] <= t:
                    value = pts[i][1]
                    i += 1
                values.append(value)
            out["channels"][name] = values
        if self.dropped_by_channel:
            out["dropped_by_channel"] = dict(
                sorted(self.dropped_by_channel.items())
            )
        return out

    def summary(self) -> Dict[str, Any]:
        """Cap accounting: channels, stored points, drops per channel."""
        return {
            "channels": len(self.channels),
            "points": self.total_points,
            "dropped": self.dropped,
            "dropped_by_channel": dict(sorted(self.dropped_by_channel.items())),
        }

    def __len__(self) -> int:
        return self.total_points


class _NullSeries:
    """Shared disabled bank: ``channel`` hands out the null channel."""

    __slots__ = ()

    enabled = False
    limit = 0
    channels: Dict[str, Channel] = {}
    total_points = 0
    dropped = 0
    dropped_by_channel: Dict[str, int] = {}

    def channel(self, name: str) -> _NullChannel:
        return NULL_CHANNEL

    def sampled(
        self, t_end: float, dt: float = 0.0, points: int = 200
    ) -> Dict[str, Any]:
        return {"dt_us": 0.0, "t_end_us": t_end, "samples": 0, "channels": {}}

    def summary(self) -> Dict[str, Any]:
        return {
            "channels": 0,
            "points": 0,
            "dropped": 0,
            "dropped_by_channel": {},
        }

    def __len__(self) -> int:
        return 0


NULL_SERIES = _NullSeries()
