"""Per-message lifecycle spans.

A :class:`MessageSpan` is the biography of one MPI-level message on one
side of the wire: a send or a recv, the protocol it travelled under, and
every *phase* (a completed ``[t0, t1]`` interval of attributable work —
an eager copy, a registration, a WQE post, a wire transit) plus the
*edges* that tie it to the spans it depended on (the matching send, the
CTS that released the data, the NIC go packet).  Phases are explicit
intervals rather than ordered boundary marks because host and wire
activity overlap freely within one span; gaps between phases are *waits*
and are attributed later by the critical-path walk
(:mod:`repro.telemetry.critical_path`), not stored.

Model code never checks whether lifecycle collection is on: a disabled
:class:`~.collect.Telemetry` hands out :data:`NULL_LIFECYCLE`, whose
``start`` returns the shared :data:`NULL_SPAN` — every method a no-op,
``live`` False — so the disabled hot path pays one attribute test or one
empty call and allocates nothing, mirroring the null-instrument pattern
of :mod:`~.registry`.

Spans are recorded in start order (simulation order, therefore
deterministic); the buffer is bounded, with per-category drop counts
once the cap is hit so a truncated run is visibly truncated.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: One completed phase: (name, start us, end us).
Phase = Tuple[str, float, float]

#: One dependency edge: (time us, producer span id, bridge label).  The
#: time is when the producer's effect became visible to this span (e.g.
#: wire delivery); the label names the work bridging that time to the
#: span's next own phase ("host_match", "nic_match", "go", ...).
Edge = Tuple[float, int, str]

#: Which blame component each non-wire phase belongs to.  Wire phases
#: ("wire:*") are split across pcix/nic/link/switch using the per-span
#: stage breakdown note recorded by :meth:`repro.networks.base.Nic.push`.
PHASE_COMPONENT: Dict[str, str] = {
    # host CPU work
    "eager_copy": "host",
    "registration": "host",
    "reg_lookup": "host",
    "wqe_post": "host",
    "command_post": "host",
    "host_match": "host",
    "host_poll": "host",
    # NIC engine / thread work
    "nic_match": "nic",
    "dma_setup": "nic",
    "event_delivery": "nic",
    "go": "nic",
    # attribution gaps
    "credit_wait": "waiting",
    "wait": "waiting",
    "app": "app",
    # hard-failure recovery (detection + path migration downtime)
    "failover": "failover",
}


def component_of(phase: str) -> str:
    """The blame component a phase name belongs to (wire phases -> link)."""
    if phase.startswith("wire:"):
        return "link"
    return PHASE_COMPONENT.get(phase, "host")


class MessageSpan:
    """The recorded lifecycle of one message send or recv."""

    __slots__ = (
        "id",
        "kind",
        "owner",
        "peer",
        "tag",
        "size",
        "proto",
        "t0",
        "prev_id",
        "phases",
        "edges",
        "notes",
        "_last_end",
        "_end",
    )

    #: Live spans record; the null span (live=False) silently drops.
    live = True

    def __init__(
        self,
        span_id: int,
        kind: str,
        owner: int,
        peer: int,
        tag: int,
        size: int,
        proto: str,
        t0: float,
        prev_id: int = -1,
    ) -> None:
        self.id = span_id
        self.kind = kind
        self.owner = owner
        self.peer = peer
        self.tag = tag
        self.size = size
        self.proto = proto
        self.t0 = t0
        self.prev_id = prev_id
        self.phases: List[Phase] = []
        self.edges: List[Edge] = []
        self.notes: Dict[str, Any] = {}
        self._last_end = t0
        self._end: Optional[float] = None

    def phase(self, name: str, t0: float, t1: float) -> None:
        """Record a completed interval of attributable work."""
        if t1 <= t0:
            return
        self.phases.append((name, t0, t1))
        if t1 > self._last_end:
            self._last_end = t1

    def edge(self, t: float, dep: "MessageSpan", label: str) -> None:
        """Record that ``dep``'s effect reached this span at time ``t``."""
        if dep is self or not dep.live:
            return
        self.edges.append((t, dep.id, label))

    def note(self, key: str, value: Any) -> None:
        """Attach an annotation (fault counts, wire breakdowns, errors)."""
        self.notes[key] = value

    def relabel(self, proto: str) -> None:
        """Set the protocol once known (a recv learns it at match time)."""
        self.proto = proto

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment an integer annotation (retry/failure counters)."""
        self.notes[key] = self.notes.get(key, 0) + amount

    def finish(self, t: float) -> None:
        """Pin the span's completion time (else the last phase end wins)."""
        self._end = t
        if t > self._last_end:
            self._last_end = t

    @property
    def last_end(self) -> float:
        """Latest recorded time on this span (phase end or finish)."""
        return self._last_end

    @property
    def end(self) -> float:
        """Completion time: explicit finish, else the last phase end."""
        return self._end if self._end is not None else self._last_end

    @property
    def finished(self) -> bool:
        """Whether the model explicitly closed this span.

        The end-of-run invariant checker requires every span finished:
        an unfinished span is a message whose completion the model
        never observed.
        """
        return self._end is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, key order fixed for byte-identical dumps."""
        return {
            "id": self.id,
            "kind": self.kind,
            "owner": self.owner,
            "peer": self.peer,
            "tag": self.tag,
            "size": self.size,
            "proto": self.proto,
            "t0": self.t0,
            "end": self.end,
            "prev": self.prev_id,
            "phases": [list(p) for p in self.phases],
            "edges": [list(e) for e in self.edges],
            "notes": dict(sorted(self.notes.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MessageSpan(#{self.id} {self.kind} r{self.owner}<->r{self.peer} "
            f"{self.proto} {self.size}B phases={len(self.phases)})"
        )


class _NullSpan:
    """Shared inert span handed out when lifecycle collection is off."""

    __slots__ = ()

    live = False
    id = -1
    kind = ""
    owner = -1
    peer = -1
    tag = 0
    size = 0
    proto = ""
    t0 = 0.0
    prev_id = -1
    phases: Tuple[Phase, ...] = ()
    edges: Tuple[Edge, ...] = ()
    notes: Dict[str, Any] = {}
    last_end = 0.0
    end = 0.0
    finished = True

    def phase(self, name: str, t0: float, t1: float) -> None:
        pass

    def edge(self, t: float, dep: Any, label: str) -> None:
        pass

    def note(self, key: str, value: Any) -> None:
        pass

    def relabel(self, proto: str) -> None:
        pass

    def bump(self, key: str, amount: int = 1) -> None:
        pass

    def finish(self, t: float) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {}


#: The shared no-op span.  ``record.span`` and ``request.span`` default
#: to it, so uninstrumented paths never test for None.
NULL_SPAN = _NullSpan()


class LifecycleRecorder:
    """Bounded, deterministic store of :class:`MessageSpan` objects.

    Span ids are assigned in start order; per-rank ``prev_id`` chains
    (the previous span *started* by the same rank) let the critical-path
    walk escape into "the rank was busy elsewhere" without a full
    program trace.  Once ``limit`` spans exist, further starts return
    :data:`NULL_SPAN` and are counted per ``kind.proto`` category.
    """

    __slots__ = ("limit", "spans", "dropped_by_category", "_last_by_owner")

    enabled = True

    def __init__(self, limit: int = 200_000) -> None:
        self.limit = limit
        self.spans: List[MessageSpan] = []
        self.dropped_by_category: Dict[str, int] = {}
        self._last_by_owner: Dict[int, int] = {}

    def start(
        self,
        kind: str,
        owner: int,
        peer: int,
        tag: int,
        size: int,
        proto: str,
        now: float,
    ) -> MessageSpan:
        """Open a span for a message ``kind`` ("send"/"recv") on ``owner``."""
        if len(self.spans) >= self.limit:
            category = f"{kind}.{proto}"
            self.dropped_by_category[category] = (
                self.dropped_by_category.get(category, 0) + 1
            )
            return NULL_SPAN  # type: ignore[return-value]
        span = MessageSpan(
            len(self.spans),
            kind,
            owner,
            peer,
            tag,
            size,
            proto,
            now,
            prev_id=self._last_by_owner.get(owner, -1),
        )
        self.spans.append(span)
        self._last_by_owner[owner] = span.id
        return span

    @property
    def dropped(self) -> int:
        """Total spans dropped at the cap, across categories."""
        total = 0
        for count in self.dropped_by_category.values():
            total += count
        return total

    def summary(self) -> Dict[str, Any]:
        """Cap accounting: stored spans, drops total and per category."""
        return {
            "spans": len(self.spans),
            "dropped": self.dropped,
            "dropped_by_category": dict(
                sorted(self.dropped_by_category.items())
            ),
        }

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans as JSON-ready dicts (start order)."""
        return [span.to_dict() for span in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


class _NullLifecycle:
    """Shared disabled recorder: ``start`` hands out the null span."""

    __slots__ = ()

    enabled = False
    limit = 0
    spans: Tuple[MessageSpan, ...] = ()
    dropped = 0
    dropped_by_category: Dict[str, int] = {}

    def start(
        self,
        kind: str,
        owner: int,
        peer: int,
        tag: int,
        size: int,
        proto: str,
        now: float,
    ) -> _NullSpan:
        return NULL_SPAN

    def summary(self) -> Dict[str, Any]:
        return {"spans": 0, "dropped": 0, "dropped_by_category": {}}

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled recorder used by untelemetered simulators.
NULL_LIFECYCLE = _NullLifecycle()


def matched_on_arrival_share(spans: Any) -> Optional[float]:
    """Fraction of recv spans whose message hit a pre-posted receive.

    This is the paper's Fig. 1 mechanism made a number: Elan-4's NIC
    thread matches arrivals against descriptors already on the NIC
    (share ~1 in ping-pong), while MVAPICH defers all matching to the
    host's next MPI call (share 0 by construction).  Returns ``None``
    when no recv span carries the annotation.
    """
    hits = total = 0
    for span in spans:
        flag = span.notes.get("matched_on_arrival")
        if flag is None:
            continue
        total += 1
        hits += 1 if flag else 0
    return (hits / total) if total else None
