"""Folded-Clos fat trees of ``radix``-port switches, 1 to 3 levels.

The port arithmetic is shared with :mod:`repro.cost.switchmath` (the
paper's Figure 7 cost model): leaves dedicate half their ports to hosts
and half to uplinks, so ``m = radix // 2`` hosts hang off each leaf, a
two-level tree reaches ``m * radix`` hosts and a three-level tree
``m^2 * radix``.  Building a topology asserts its own switch/link counts
against the cost model, so the performance and procurement answers can
never drift apart.

Routing is deterministic source-based up-routing with d-mod-k selection
(up-path switch = ``dst mod k``), matching both technologies' era
routing: every (src, dst) pair uses one fixed path, so ISL hot spots are
reproducible rather than averaged away.

Stage naming: node links keep the historical ``up{i}`` / ``down{i}``
names; inter-switch links are ``isl:`` stages on ``link.*`` resources,
so repro-explain blames them as an ``isl`` component distinct from the
node cables and the switch crossings, and fault plans can target one
named ISL (``fault.link = "isl:l0>s1"``).

A 1-level fat tree *is* the crossbar (stage-for-stage identical — the
golden-equivalence pin in the tests), which is what lets the crossbar
remain the default fabric while large what-ifs swap in deeper trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..cost import switchmath
from ..errors import ConfigurationError, CostModelError
from ..sim import Stage
from .base import CrossbarTopology

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.fabric import FabricSpec
    from ..sim import Simulator


class FatTreeTopology(CrossbarTopology):
    """Fat tree of homogeneous ``radix``-port switches.

    ``levels=0`` (the default) picks the shallowest tree that reaches
    ``n_nodes``; explicit 1/2/3 force a depth (useful for equivalence
    pins and what-ifs).  Level meanings:

    * 1 — single chassis, identical to :class:`CrossbarTopology`;
    * 2 — leaf/spine folded Clos (the old ``TwoLevelFabric``);
    * 3 — pods of ``m`` leaves and ``m`` aggregation switches under a
      core layer of ``m^2`` switches (``m = radix // 2``).
    """

    kind = "fattree"

    def __init__(
        self,
        sim: "Simulator",
        n_nodes: int,
        spec: "FabricSpec",
        radix: int,
        levels: int = 0,
    ) -> None:
        super().__init__(sim, n_nodes, spec)
        if radix < 4 or radix % 2:
            raise ConfigurationError(f"radix must be even and >= 4: {radix}")
        self.radix = radix
        m = radix // 2
        if levels == 0:
            if n_nodes <= radix:
                levels = 1
            elif n_nodes <= m * radix:
                levels = 2
            else:
                levels = 3
        if levels not in (1, 2, 3):
            raise ConfigurationError(f"fat tree levels must be 1..3: {levels}")
        self.levels = levels
        try:
            #: Bill of switching materials — the same arithmetic the
            #: cost model sells, asserted against the built structure.
            self.switch_count = switchmath.fat_tree(n_nodes, radix, levels)
        except CostModelError as exc:
            if levels != 2:
                raise ConfigurationError(str(exc)) from exc
            # An *explicit* two-level tree past full-bisection capacity is
            # allowed as an oversubscribed folded Clos — the historical
            # ``TwoLevelFabric`` contract — using the same ceil arithmetic
            # as :func:`~repro.cost.switchmath.two_level`, minus the cap.
            leaves = -(-n_nodes // m)
            spines = max(1, -(-leaves * m // radix))
            self.switch_count = switchmath.SwitchCount(
                leaves=leaves, spines=spines, isl_cables=leaves * m
            )
        #: Hosts per leaf switch.
        self.down_per_leaf = 1 if levels == 1 else m
        self.n_leaves = -(-n_nodes // m) if levels > 1 else 1
        if levels == 2:
            self.n_spines = self.switch_count.spines
        elif levels == 3:
            self.leaves_per_pod = m
            self.aggs_per_pod = m
            self.n_pods = -(-n_nodes // (m * m))
            self.n_cores = self.switch_count.cores
            self.n_spines = self.switch_count.spines  # aggregation layer
        else:
            self.n_spines = 0
        if levels > 1 and self.n_leaves != self.switch_count.leaves:
            raise ConfigurationError(
                "topology/cost model disagree on leaf count: "
                f"{self.n_leaves} vs {self.switch_count.leaves}"
            )

    # -- structure ---------------------------------------------------------

    def leaf_of(self, node: int) -> int:
        """Index of the leaf switch ``node`` attaches to."""
        self._check(node)
        if self.levels == 1:
            return 0
        return node // (self.radix // 2)

    def pod_of(self, node: int) -> int:
        """Index of the pod ``node`` belongs to (3-level trees)."""
        self._check(node)
        if self.levels < 3:
            return 0
        m = self.radix // 2
        return node // (m * m)

    @property
    def hops(self) -> int:
        return {1: 1, 2: 3, 3: 5}[self.levels]

    def max_route_stages(self) -> int:
        return {1: 2, 2: 4, 3: 6}[self.levels]

    def describe(self) -> str:
        c = self.switch_count
        return (
            f"fat tree ({self.n_nodes} nodes, radix {self.radix}, "
            f"{self.levels} level(s), {c.total_switches} switches, "
            f"{c.isl_cables} ISL cables)"
        )

    # -- liveness (hard failures) ------------------------------------------

    def link_targets(self) -> List[str]:
        names = [f"up{i}" for i in range(self.n_nodes)]
        names += [f"down{i}" for i in range(self.n_nodes)]
        if self.levels == 2:
            for leaf in range(self.n_leaves):
                for spine in range(self.n_spines):
                    names.append(f"isl:l{leaf}>s{spine}")
                    names.append(f"isl:s{spine}>l{leaf}")
        elif self.levels == 3:
            m = self.radix // 2
            for leaf in range(self.n_leaves):
                pod = leaf // m
                for j in range(m):
                    agg = pod * m + j
                    names.append(f"isl:l{leaf}>a{agg}")
                    names.append(f"isl:a{agg}>l{leaf}")
            # Core c wires to the aggs sharing its offset c % m in every
            # pod (the d-mod-k selection arithmetic guarantees it).
            for agg in range(self.n_spines):
                for core in range(self.n_cores):
                    if core % m == agg % m:
                        names.append(f"isl:a{agg}>c{core}")
                        names.append(f"isl:c{core}>a{agg}")
        return sorted(names)

    def switch_ids(self) -> List[str]:
        if self.levels == 1:
            return super().switch_ids()
        ids = [f"l{i}" for i in range(self.n_leaves)]
        if self.levels == 2:
            ids += [f"s{j}" for j in range(self.n_spines)]
        else:
            ids += [f"a{j}" for j in range(self.n_spines)]
            ids += [f"c{k}" for k in range(self.n_cores)]
        return sorted(ids)

    def switch_links(self, switch_id: str) -> List[str]:
        if self.levels == 1:
            return super().switch_links(switch_id)
        kind, idx = switch_id[:1], switch_id[1:]
        if kind not in ("l", "s", "a", "c") or not idx.isdigit():
            raise ConfigurationError(f"unknown fat-tree switch {switch_id!r}")
        idx = int(idx)
        m = self.radix // 2
        names: List[str] = []
        if kind == "l":
            for node in range(self.n_nodes):
                if node // m == idx:
                    names += [f"up{node}", f"down{node}"]
            if self.levels == 2:
                for spine in range(self.n_spines):
                    names += [f"isl:l{idx}>s{spine}", f"isl:s{spine}>l{idx}"]
            else:
                pod = idx // m
                for j in range(m):
                    agg = pod * m + j
                    names += [f"isl:l{idx}>a{agg}", f"isl:a{agg}>l{idx}"]
        elif kind == "s":
            for leaf in range(self.n_leaves):
                names += [f"isl:l{leaf}>s{idx}", f"isl:s{idx}>l{leaf}"]
        elif kind == "a":
            pod = idx // m
            for leaf in range(pod * m, min((pod + 1) * m, self.n_leaves)):
                names += [f"isl:l{leaf}>a{idx}", f"isl:a{idx}>l{leaf}"]
            for core in range(self.n_cores):
                if core % m == idx % m:
                    names += [f"isl:a{idx}>c{core}", f"isl:c{core}>a{idx}"]
        else:
            for agg in range(self.n_spines):
                if agg % m == idx % m:
                    names += [f"isl:a{agg}>c{idx}", f"isl:c{idx}>a{agg}"]
        return sorted(set(names))

    def _alternate_route(self, src: int, dst: int) -> Optional[List[Stage]]:
        """Next live d-mod-k up-path, in deterministic offset order.

        InfiniBand's Automatic Path Migration preprograms alternate
        paths through different spines/cores; Elan's second rail uses an
        independent fabric but this same selection models its routing.
        Node cables (``up{i}``/``down{i}``) and same-leaf pairs have no
        path diversity — a dead node cable is unroutable.
        """
        if self.levels == 1:
            return None
        src_leaf, dst_leaf = self.leaf_of(src), self.leaf_of(dst)
        if src_leaf == dst_leaf:
            return None
        up = self._node_stage("up", src, last=False)
        down = self._node_stage("down", dst, last=True)
        if up.name in self.dead or down.name in self.dead:
            return None
        if self.levels == 2:
            for k in range(1, self.n_spines):
                spine = (dst + k) % self.n_spines
                route = [
                    up,
                    self._isl_stage(f"isl:l{src_leaf}>s{spine}"),
                    self._isl_stage(f"isl:s{spine}>l{dst_leaf}"),
                    down,
                ]
                if self.route_alive(route):
                    return route
            return None
        m = self.radix // 2
        src_pod, dst_pod = self.pod_of(src), self.pod_of(dst)
        if src_pod == dst_pod:
            for k in range(1, m):
                agg = dst_pod * m + (dst + k) % m
                route = [
                    up,
                    self._isl_stage(f"isl:l{src_leaf}>a{agg}"),
                    self._isl_stage(f"isl:a{agg}>l{dst_leaf}"),
                    down,
                ]
                if self.route_alive(route):
                    return route
            return None
        for k in range(1, self.n_cores):
            core = (dst + k) % self.n_cores
            offset = core % m
            agg_src = src_pod * m + offset
            agg_dst = dst_pod * m + offset
            route = [
                up,
                self._isl_stage(f"isl:l{src_leaf}>a{agg_src}"),
                self._isl_stage(f"isl:a{agg_src}>c{core}"),
                self._isl_stage(f"isl:c{core}>a{agg_dst}"),
                self._isl_stage(f"isl:a{agg_dst}>l{dst_leaf}"),
                down,
            ]
            if self.route_alive(route):
                return route
        return None

    # -- routing -----------------------------------------------------------

    def _node_stage(self, direction: str, node: int, last: bool) -> Stage:
        s = self.spec
        if direction == "up":
            return Stage(
                resource=self.uplinks[node],
                bandwidth=s.link_bandwidth,
                latency_out=s.cable_latency + s.switch_latency,
                name=f"up{node}",
                switch_latency=s.switch_latency,
            )
        return Stage(
            resource=self.downlinks[node],
            bandwidth=s.link_bandwidth,
            latency_out=s.cable_latency,
            name=f"down{node}",
        )

    def _isl_stage(self, name: str) -> Stage:
        """One inter-switch hop: a cable plus the downstream crossing."""
        s = self.spec
        return Stage(
            resource=self._link(f"link.{name}"),
            bandwidth=s.link_bandwidth,
            latency_out=s.cable_latency + s.switch_latency,
            name=name,
            switch_latency=s.switch_latency,
        )

    def _route(self, src: int, dst: int) -> List[Stage]:
        if self.levels == 1:
            return super()._route(src, dst)
        src_leaf, dst_leaf = self.leaf_of(src), self.leaf_of(dst)
        if src_leaf == dst_leaf:
            return super()._route(src, dst)
        up = self._node_stage("up", src, last=False)
        down = self._node_stage("down", dst, last=True)
        if self.levels == 2:
            spine = dst % self.n_spines  # deterministic d-mod-k up-route
            return [
                up,
                self._isl_stage(f"isl:l{src_leaf}>s{spine}"),
                self._isl_stage(f"isl:s{spine}>l{dst_leaf}"),
                down,
            ]
        # Three levels: leaf -> agg [-> core -> agg'] -> leaf'.
        m = self.radix // 2
        src_pod, dst_pod = self.pod_of(src), self.pod_of(dst)
        agg_dst = dst_pod * m + dst % m
        if src_pod == dst_pod:
            return [
                up,
                self._isl_stage(f"isl:l{src_leaf}>a{agg_dst}"),
                self._isl_stage(f"isl:a{agg_dst}>l{dst_leaf}"),
                down,
            ]
        agg_src = src_pod * m + dst % m
        core = dst % self.n_cores
        return [
            up,
            self._isl_stage(f"isl:l{src_leaf}>a{agg_src}"),
            self._isl_stage(f"isl:a{agg_src}>c{core}"),
            self._isl_stage(f"isl:c{core}>a{agg_dst}"),
            self._isl_stage(f"isl:a{agg_dst}>l{dst_leaf}"),
            down,
        ]


class TwoLevelFabric(FatTreeTopology):
    """Deprecated alias: the pre-1.5 leaf/spine what-if fabric.

    Since 1.5.0 the routing/contention implementation lives in
    :class:`FatTreeTopology`; this thin subclass keeps the historical
    constructor signature (and ``Machine(fabric_radix=...)`` keeps
    building it), so ``isinstance`` checks and pickled references stay
    valid.  New code should use :class:`FatTreeTopology` or a
    :class:`~repro.topology.TopologySpec` with ``kind="fattree"``.
    """

    def __init__(
        self, sim: "Simulator", n_nodes: int, spec: "FabricSpec", radix: int
    ) -> None:
        super().__init__(sim, n_nodes, spec, radix=radix, levels=2)
