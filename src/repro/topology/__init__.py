"""Multi-stage fabric topologies with per-hop routing and contention.

The paper's test beds hang every node off a single switch chassis, so
the repro's original fabric was a crossbar and the large-scale story
(Figure 8) was *extrapolated*.  This package turns the fabric seam into
a real topology model: every switch-to-switch link is a directed
:class:`~repro.sim.FifoResource`, routes are deterministic functions of
(src, dst), and a message contends on every link it traverses — output
contention, ISL hot spots and torus neighbor locality all emerge from
the event kernel rather than from closed-form guesses.

Concrete topologies:

* :class:`CrossbarTopology` — the original single-chassis model (still
  the default; re-exported as ``repro.fabric.CrossbarFabric``);
* :class:`FatTreeTopology` — folded-Clos fat tree of ``radix``-port
  switches, 1 to 3 levels, deterministic d-mod-k up-routing, with port
  arithmetic shared with :mod:`repro.cost.switchmath` so the cost and
  performance models agree switch-for-switch;
* :class:`TorusTopology` — 3D torus of point-to-point links (the
  lattice-QCD machine shape), dimension-ordered routing with
  per-dimension hop latencies.

:class:`TopologySpec` is the JSON-scalar campaign-sweepable description
(``topology.*`` dotted axes); :class:`TopologyScalingStudy` simulates
ping-pong / b_eff / sweep3d at 128-1024+ ranks and sets the result next
to the :mod:`repro.core.extrapolate` trend fit — the repro's first
number the 2004 paper could only guess at.
"""

from .base import CrossbarTopology, Topology
from .fattree import FatTreeTopology, TwoLevelFabric
from .spec import TopologySpec
from .study import TopologyScalingStudy, TopologyScalingResult
from .torus import TorusTopology

__all__ = [
    "CrossbarTopology",
    "FatTreeTopology",
    "Topology",
    "TopologyScalingResult",
    "TopologyScalingStudy",
    "TopologySpec",
    "TorusTopology",
    "TwoLevelFabric",
]
