"""Campaign-sweepable topology descriptions.

A :class:`TopologySpec` is to fabrics what
:class:`~repro.faults.FaultPlan` is to fault injection: every field is a
JSON scalar, so a spec rides inside a
:class:`~repro.campaign.RunSpec` as ``topology.``-prefixed dotted axes
(``topology.kind``, ``topology.radix``, ``topology.dims``, ...) and
crosses multiprocessing boundaries unchanged.  Compound values use
compact strings — ``dims="8x8x16"``, ``dim_latency="0.1,0.1,0.3"`` —
parsed here, once, at validation time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.fabric import FabricSpec
    from ..sim import Simulator
    from .base import Topology

#: Topology kinds a spec may name.
KINDS = ("crossbar", "fattree", "torus")


@dataclass(frozen=True)
class TopologySpec:
    """Declarative fabric shape (validated eagerly, JSON scalars only).

    The default spec is the plain single-chassis crossbar, which keeps
    ``Machine(...)`` with no topology argument bit-identical to every
    pre-topology golden result.
    """

    #: One of :data:`KINDS`.
    kind: str = "crossbar"
    #: Switch port count (fat tree only; even, >= 4).
    radix: int = 0
    #: Fat-tree depth 1..3; 0 picks the shallowest tree that fits.
    levels: int = 0
    #: Torus shape as ``"8x8x16"``; empty auto-factors near-cubically.
    dims: str = ""
    #: Torus per-dimension hop latencies (us) as ``"0.1,0.1,0.3"``;
    #: empty uses the fabric spec's cable latency in every dimension.
    dim_latency: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.kind == "fattree":
            if self.radix < 4 or self.radix % 2:
                raise ConfigurationError(
                    f"fat tree needs an even radix >= 4, got {self.radix}"
                )
            if self.levels not in (0, 1, 2, 3):
                raise ConfigurationError(
                    f"fat tree levels must be 0 (auto) or 1..3: {self.levels}"
                )
        else:
            if self.radix or self.levels:
                raise ConfigurationError(
                    f"radix/levels only apply to fat trees, not {self.kind!r}"
                )
        if self.kind == "torus":
            self.dims_tuple()  # validate eagerly
            self.dim_latency_tuple()
        elif self.dims or self.dim_latency:
            raise ConfigurationError(
                f"dims/dim_latency only apply to tori, not {self.kind!r}"
            )

    # -- parsed views --------------------------------------------------------

    def dims_tuple(self) -> Optional[Tuple[int, int, int]]:
        """Parsed torus shape, or ``None`` for auto-factorization."""
        if not self.dims:
            return None
        parts = self.dims.lower().split("x")
        try:
            vals = tuple(int(p) for p in parts)
        except ValueError:
            vals = ()
        if len(vals) != 3 or any(v < 1 for v in vals):
            raise ConfigurationError(
                f"torus dims must look like '8x8x16', got {self.dims!r}"
            )
        return vals

    def dim_latency_tuple(self) -> Optional[Tuple[float, float, float]]:
        """Parsed per-dimension latencies, or ``None`` for the default."""
        if not self.dim_latency:
            return None
        try:
            vals = tuple(float(p) for p in self.dim_latency.split(","))
        except ValueError:
            vals = ()
        if len(vals) != 3 or any(v < 0 for v in vals):
            raise ConfigurationError(
                "dim_latency must be three non-negative numbers like "
                f"'0.1,0.1,0.3', got {self.dim_latency!r}"
            )
        return vals

    # -- construction --------------------------------------------------------

    def build(self, sim: "Simulator", n_nodes: int, fabric: "FabricSpec") -> "Topology":
        """Instantiate this topology on ``sim`` for ``n_nodes`` nodes."""
        if self.kind == "fattree":
            from .fattree import FatTreeTopology

            return FatTreeTopology(
                sim, n_nodes, fabric, radix=self.radix, levels=self.levels
            )
        if self.kind == "torus":
            from .torus import TorusTopology

            return TorusTopology(
                sim,
                n_nodes,
                fabric,
                dims=self.dims_tuple(),
                dim_latency=self.dim_latency_tuple(),
            )
        from .base import CrossbarTopology

        return CrossbarTopology(sim, n_nodes, fabric)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (field order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologySpec":
        """Build a spec from a (possibly partial) field mapping."""
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown topology fields {sorted(unknown)}; "
                f"valid: {sorted(valid)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """Compact non-default-fields summary for labels and journals."""
        defaults = TopologySpec()
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        ]
        return "TopologySpec(" + ", ".join(parts) + ")" if parts else "TopologySpec()"
