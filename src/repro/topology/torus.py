"""3D torus of point-to-point links with dimension-ordered routing.

The shape of the lattice-QCD machines contemporary with the paper
(APEnet and its kin): no central switch at all, every node owns six
directed links to its neighbors and messages are forwarded through
intermediate nodes' routers.  Routing is deterministic dimension-ordered
(x, then y, then z), taking the shorter ring direction and breaking
exact ties toward increasing coordinates — one fixed path per (src,
dst), so link hot spots are reproducible.

Hop accounting: each traversed link is one pipeline stage on a directed
``link.torus.*`` resource with that dimension's cable latency; every hop
except the last also pays the downstream router crossing
(``switch_latency``), while the final hop lands in the destination NIC
whose rx engine models ejection.  Neighbor exchanges therefore cross no
router at all — the point-to-point locality these machines were built
for — and sweep3d-style near-neighbor traffic stays cheap while
long-range pairs pay per-hop latency and contend on every intermediate
link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim import Stage
from .base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.fabric import FabricSpec
    from ..sim import Simulator

_AXES = ("x", "y", "z")


def auto_dims(n_nodes: int) -> Tuple[int, int, int]:
    """The most cubic ``dx <= dy <= dz`` factorization of ``n_nodes``.

    Deterministic in ``n_nodes`` alone: exhaustive over divisors,
    minimizing the spread ``dz - dx`` (then the diameter).  1024 ranks
    factor to (8, 8, 16).
    """
    if n_nodes < 1:
        raise ConfigurationError("torus needs at least one node")
    best: Optional[Tuple[int, int, int]] = None
    best_rank = None
    for dx in range(1, n_nodes + 1):
        if dx * dx * dx > n_nodes:
            break
        if n_nodes % dx:
            continue
        rest = n_nodes // dx
        dy = dx
        while dy * dy <= rest:
            if rest % dy == 0:
                dz = rest // dy
                rank = (dz - dx, dx // 2 + dy // 2 + dz // 2)
                if best_rank is None or rank < best_rank:
                    best, best_rank = (dx, dy, dz), rank
            dy += 1
    assert best is not None  # dx=1, dy=1, dz=n always qualifies
    return best


class TorusTopology(Topology):
    """3D torus over ``dims = (dx, dy, dz)`` with ``dx*dy*dz`` nodes.

    Node *i* sits at coordinates ``(i % dx, (i // dx) % dy,
    i // (dx*dy))``.  ``dim_latency`` optionally gives each dimension
    its own per-hop cable latency (e.g. longer Z cables in a rack-span
    ring); default is the fabric spec's cable latency everywhere.
    """

    kind = "torus"

    def __init__(
        self,
        sim: "Simulator",
        n_nodes: int,
        spec: "FabricSpec",
        dims: Optional[Sequence[int]] = None,
        dim_latency: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(sim, n_nodes, spec)
        self.dims: Tuple[int, int, int] = (
            tuple(int(d) for d in dims) if dims else auto_dims(n_nodes)
        )
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ConfigurationError(f"torus dims must be 3 positive ints: {self.dims}")
        dx, dy, dz = self.dims
        if dx * dy * dz != n_nodes:
            raise ConfigurationError(
                f"torus {dx}x{dy}x{dz} holds {dx * dy * dz} nodes, not {n_nodes}"
            )
        lat = (
            tuple(float(v) for v in dim_latency)
            if dim_latency
            else (spec.cable_latency,) * 3
        )
        if len(lat) != 3 or any(v < 0 for v in lat):
            raise ConfigurationError(f"bad per-dimension latencies: {lat}")
        self.dim_latency: Tuple[float, float, float] = lat

    # -- structure ---------------------------------------------------------

    def coords(self, node: int) -> Tuple[int, int, int]:
        """The (x, y, z) position of ``node``."""
        self._check(node)
        dx, dy, _ = self.dims
        return (node % dx, (node // dx) % dy, node // (dx * dy))

    def node_at(self, x: int, y: int, z: int) -> int:
        dx, dy, _ = self.dims
        return (z * dy + y) * dx + x

    @property
    def hops(self) -> int:
        """Diameter: worst-case traversed links."""
        return max(1, sum(d // 2 for d in self.dims))

    def max_route_stages(self) -> int:
        return self.hops

    def describe(self) -> str:
        dx, dy, dz = self.dims
        return f"3D torus {dx}x{dy}x{dz} ({self.n_nodes} nodes)"

    # -- routing -----------------------------------------------------------

    def _steps(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-ordered unit steps as (axis index, +1/-1) pairs."""
        here = list(self.coords(src))
        there = self.coords(dst)
        steps: List[Tuple[int, int]] = []
        for axis in range(3):
            size = self.dims[axis]
            forward = (there[axis] - here[axis]) % size
            if forward == 0:
                continue
            # Shorter ring direction; exact ties go forward (+).
            if 2 * forward <= size:
                steps.extend((axis, +1) for _ in range(forward))
            else:
                steps.extend((axis, -1) for _ in range(size - forward))
        return steps

    def _route(self, src: int, dst: int) -> List[Stage]:
        return self._stages_for(src, self._steps(src, dst))

    def _stages_for(self, src: int, steps: List[Tuple[int, int]]) -> List[Stage]:
        """Stage chain for a concrete step sequence starting at ``src``."""
        s = self.spec
        here = list(self.coords(src))
        stages: List[Stage] = []
        for i, (axis, sign) in enumerate(steps):
            x, y, z = here
            arrow = _AXES[axis] + ("+" if sign > 0 else "-")
            name = f"torus.{x}.{y}.{z}.{arrow}"
            last = i == len(steps) - 1
            # Every hop but the last enters the next node's router; the
            # final hop ends in the destination NIC's rx engine.
            crossing = 0.0 if last else s.switch_latency
            stages.append(
                Stage(
                    resource=self._link(f"link.{name}"),
                    bandwidth=s.link_bandwidth,
                    latency_out=self.dim_latency[axis] + crossing,
                    name=name,
                    switch_latency=crossing,
                )
            )
            here[axis] = (here[axis] + sign) % self.dims[axis]
        return stages

    # -- liveness (hard failures) ------------------------------------------

    def link_targets(self) -> List[str]:
        names: List[str] = []
        dx, dy, dz = self.dims
        for z in range(dz):
            for y in range(dy):
                for x in range(dx):
                    for axis in range(3):
                        if self.dims[axis] < 2:
                            continue
                        for sym in ("+", "-"):
                            names.append(
                                f"torus.{x}.{y}.{z}.{_AXES[axis]}{sym}"
                            )
        return sorted(names)

    def switch_ids(self) -> List[str]:
        ids = []
        dx, dy, dz = self.dims
        for z in range(dz):
            for y in range(dy):
                for x in range(dx):
                    ids.append(f"{x}.{y}.{z}")
        return sorted(ids)

    def switch_links(self, switch_id: str) -> List[str]:
        """All directed links in and out of the router at ``x.y.z``."""
        try:
            x, y, z = (int(part) for part in switch_id.split("."))
        except ValueError:
            raise ConfigurationError(
                f"torus router id must be 'x.y.z': {switch_id!r}"
            ) from None
        coord = (x, y, z)
        if any(not 0 <= coord[a] < self.dims[a] for a in range(3)):
            raise ConfigurationError(
                f"torus router {switch_id!r} outside {self.dims}"
            )
        names = []
        for axis in range(3):
            size = self.dims[axis]
            if size < 2:
                continue
            for sign, sym in ((+1, "+"), (-1, "-")):
                names.append(f"torus.{x}.{y}.{z}.{_AXES[axis]}{sym}")
                neighbor = list(coord)
                neighbor[axis] = (neighbor[axis] - sign) % size
                names.append(
                    f"torus.{neighbor[0]}.{neighbor[1]}.{neighbor[2]}"
                    f".{_AXES[axis]}{sym}"
                )
        return sorted(set(names))

    def _alternate_route(self, src: int, dst: int) -> Optional[List[Stage]]:
        """Dimension-ordered routing that may take the long way round.

        Per axis: try the preferred (shorter) ring direction first, then
        the opposite direction — the torus's only path diversity under
        deterministic dimension-ordered routing.  An axis with dead
        links in both directions makes the pair unroutable.
        """
        here = list(self.coords(src))
        there = self.coords(dst)
        steps: List[Tuple[int, int]] = []
        for axis in range(3):
            size = self.dims[axis]
            forward = (there[axis] - here[axis]) % size
            if forward == 0:
                continue
            prefer_plus = 2 * forward <= size
            order = ((+1, -1) if prefer_plus else (-1, +1))
            chosen = None
            for sign in order:
                hops = forward if sign > 0 else size - forward
                probe = list(here)
                alive = True
                for _ in range(hops):
                    x, y, z = probe
                    arrow = _AXES[axis] + ("+" if sign > 0 else "-")
                    if f"torus.{x}.{y}.{z}.{arrow}" in self.dead:
                        alive = False
                        break
                    probe[axis] = (probe[axis] + sign) % size
                if alive:
                    chosen = [(axis, sign)] * hops
                    break
            if chosen is None:
                return None
            steps.extend(chosen)
            here[axis] = there[axis]
        return self._stages_for(src, steps)

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> List[dict]:
        problems = super().check_invariants()
        for src, dst in sorted(self._routed):
            per_dim = [0, 0, 0]
            for axis, _ in self._steps(src, dst):
                per_dim[axis] += 1
            for axis in range(3):
                if per_dim[axis] > self.dims[axis] // 2:
                    problems.append({
                        "name": "minimal_route",
                        "message": (
                            f"route {src}->{dst} takes {per_dim[axis]} hops "
                            f"in {_AXES[axis]}, beyond the ring radius "
                            f"{self.dims[axis] // 2}"
                        ),
                        "details": {"src": src, "dst": dst, "axis": _AXES[axis]},
                    })
        return problems
