"""Topology base class and the single-chassis crossbar.

A :class:`Topology` owns the directed links of a fabric as named
:class:`~repro.sim.FifoResource` objects and answers one question for
the NIC models: :meth:`~Topology.wire_stages` — the pipeline stages a
message from ``src`` to ``dst`` occupies, one per traversed link.
Routing must be a pure deterministic function of (src, dst): both era
technologies use source-routed / deterministic tables, and the repro's
same-seed bit-identity contract depends on it.  Resource tiebreak keys
ride in from :func:`repro.sim.transfer`, which stamps each stage's
grant with ``(message key, stage index)`` for the race sanitizer.

Inter-switch and torus links are created lazily on first use and
registered under ``link.*`` resource names (so occupancy shows up as
``resource.link.*`` telemetry); node up/downlinks keep their historical
``up{i}`` / ``down{i}`` names, which golden tests pin.

:meth:`Topology.check_invariants` audits a bounded sample of the routes
a run actually used: repeated lookups must return identical resource
chains, every stage resource must be registered with the topology, and
hop counts must stay within the topology's own bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from ..errors import ConfigurationError, NetworkError
from ..sim import FifoResource, Stage

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.fabric import FabricSpec
    from ..sim import Simulator

#: Routed (src, dst) pairs remembered for end-of-run invariant checks.
#: Bounded so all-to-all traffic at 1024+ ranks cannot hoard memory.
ROUTE_SAMPLE_LIMIT = 512


class Topology:
    """Base class: a set of nodes joined by directed FIFO links."""

    #: Campaign-facing kind tag (matches ``TopologySpec.kind``).
    kind = "abstract"

    def __init__(self, sim: "Simulator", n_nodes: int, spec: "FabricSpec") -> None:
        if n_nodes < 1:
            raise ConfigurationError("fabric needs at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        self.spec = spec
        #: Every link resource of the fabric, by resource name.  Node
        #: links are registered eagerly; switch-to-switch links appear
        #: on first route that crosses them (deterministic, since
        #: routing and traffic are).
        self.links: Dict[str, FifoResource] = {}
        #: Insertion-ordered sample of routed (src, dst) pairs.
        self._routed: Dict[Tuple[int, int], None] = {}
        #: Liveness mask: stage names of links currently dead (hard
        #: faults).  Insertion-ordered dict-as-set for determinism.
        self.dead: Dict[str, None] = {}
        #: Installed failover routes per (src, dst) — APM-style path
        #: migrations that :meth:`wire_stages` serves instead of the
        #: primary route.
        self._migrations: Dict[Tuple[int, int], List[Stage]] = {}
        self._target_cache: Optional[FrozenSet[str]] = None

    # -- link bookkeeping --------------------------------------------------

    def _link(self, name: str) -> FifoResource:
        """The directed link resource called ``name`` (created on demand)."""
        res = self.links.get(name)
        if res is None:
            res = FifoResource(self.sim, name=name)
            self.links[name] = res
        return res

    def _register(self, res: FifoResource) -> FifoResource:
        """Register an eagerly-created link under its resource name."""
        self.links[res.name] = res
        return res

    # -- liveness (hard failures) ------------------------------------------

    def link_targets(self) -> List[str]:
        """Every stage name a fault plan may target, sorted.

        Full structural enumeration (not just links traffic happened to
        create), so eager target validation can tell a typo from a link
        that merely has not carried bytes yet.
        """
        raise NotImplementedError

    def _target_set(self) -> FrozenSet[str]:
        if self._target_cache is None:
            self._target_cache = frozenset(self.link_targets())
        return self._target_cache

    def switch_ids(self) -> List[str]:
        """Every switch/router id ``switch_down`` may target, sorted."""
        raise NotImplementedError

    def switch_links(self, switch_id: str) -> List[str]:
        """Stage names of every link attached to ``switch_id`` (sorted).

        Killing a switch kills all of them — both directions, including
        neighbors' links pointing into it.
        """
        raise NotImplementedError

    def link_alive(self, name: str) -> bool:
        """Whether the named link is currently live."""
        return name not in self.dead

    def kill_link(self, name: str) -> bool:
        """Mark one link dead; returns False if it already was.

        Installed migrations crossing the newly dead link are evicted
        (sorted order), so their pairs re-migrate on next failure.
        """
        if name not in self._target_set():
            raise NetworkError(f"cannot kill unknown link {name!r}")
        if name in self.dead:
            return False
        self.dead[name] = None
        stale = [
            pair for pair in sorted(self._migrations)
            if any(st.name == name for st in self._migrations[pair])
        ]
        for pair in stale:
            del self._migrations[pair]
        return True

    def revive_link(self, name: str) -> bool:
        """Clear one link's dead mark; returns False if it was live.

        Migrated pairs do *not* fail back — APM semantics: a migrated
        path stays migrated until something kills it too.
        """
        if name not in self.dead:
            return False
        del self.dead[name]
        return True

    def route_alive(self, stages: List[Stage]) -> bool:
        """Whether no stage of ``stages`` crosses a dead link."""
        for st in stages:
            if st.name in self.dead:
                return False
        return True

    def _alternate_route(self, src: int, dst: int) -> Optional[List[Stage]]:
        """Shape-specific path diversity around dead links; None if none.

        Candidates are tried in a deterministic order that is a pure
        function of (src, dst, liveness mask) — the failover half of the
        bit-identity contract.
        """
        return None

    def failover_route(self, src: int, dst: int) -> Optional[List[Stage]]:
        """First live route in candidate order (primary first), or None."""
        route = self._route(src, dst)
        if self.route_alive(route):
            return route
        return self._alternate_route(src, dst)

    def migrate(self, src: int, dst: int) -> Optional[List[Stage]]:
        """Install (or confirm) a live route for (src, dst).

        Returns the stages subsequent :meth:`wire_stages` calls for the
        pair will serve, or None when no live path exists.  A live
        primary route (e.g. after a flap revived the link before
        detection finished) is returned without installing a migration.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        current = self._migrations.get((src, dst))
        if current is not None and self.route_alive(current):
            return current
        primary = self._route(src, dst)
        if self.route_alive(primary):
            return primary
        alternate = self._alternate_route(src, dst)
        if alternate is None:
            return None
        self._migrations[(src, dst)] = alternate
        return alternate

    # -- routing -----------------------------------------------------------

    def wire_stages(self, src: int, dst: int) -> List[Stage]:
        """Pipeline stages for the wire portion of a src -> dst message.

        Same-node (NIC loopback) paths return an empty list: the message
        never leaves the adapter, which is how both era MPI stacks
        handled intra-node traffic on these NICs.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        if len(self._routed) < ROUTE_SAMPLE_LIMIT:
            self._routed[(src, dst)] = None
        if self._migrations:
            migrated = self._migrations.get((src, dst))
            if migrated is not None:
                return migrated
        return self._route(src, dst)

    def _route(self, src: int, dst: int) -> List[Stage]:
        """The deterministic stage chain for distinct, in-range nodes."""
        raise NotImplementedError

    def path_latency(self, src: int, dst: int) -> float:
        """Pure propagation latency of the path (no serialization)."""
        return sum(st.latency_out for st in self.wire_stages(src, dst))

    @property
    def hops(self) -> int:
        """Worst-case switch crossings between two distinct nodes."""
        raise NotImplementedError

    def max_route_stages(self) -> int:
        """Upper bound on the stage count of any route."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable topology summary for reports."""
        return f"{self.kind} ({self.n_nodes} nodes)"

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise NetworkError(f"node {node} outside fabric of {self.n_nodes}")

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> List[dict]:
        """Topology-level end-of-run checks over the sampled routes.

        Returns plain problem dicts (``name``/``message``/``details``)
        like the NIC and MPI-impl hooks; aggregated by
        :func:`repro.analysis.check_invariants` under the ``topology``
        subsystem.
        """
        problems: List[dict] = []
        bound = self.max_route_stages()
        for src, dst in sorted(self._routed):
            first = [st.resource for st in self._route(src, dst)]
            second = [st.resource for st in self._route(src, dst)]
            if first != second:
                problems.append({
                    "name": "route_deterministic",
                    "message": f"route {src}->{dst} changed between lookups",
                    "details": {"src": src, "dst": dst},
                })
                continue
            stages = self._route(src, dst)
            if len(stages) > bound:
                problems.append({
                    "name": "hop_bound",
                    "message": (
                        f"route {src}->{dst} crosses {len(stages)} links, "
                        f"beyond the topology bound of {bound}"
                    ),
                    "details": {"src": src, "dst": dst, "stages": len(stages)},
                })
            for st in stages:
                res = st.resource
                if res is not None and self.links.get(res.name) is not res:
                    problems.append({
                        "name": "links_closed",
                        "message": (
                            f"route {src}->{dst} uses unregistered link "
                            f"{res.name or 'anonymous'!r}"
                        ),
                        "details": {"src": src, "dst": dst, "link": res.name},
                    })
        # Installed failover routes must avoid every dead link ("no
        # route crosses a dead link"): a migration is the route traffic
        # actually uses, so a dead stage here is a live routing bug.
        # Primary routes of pairs whose traffic predated the kill are
        # legitimately stale and not audited.
        for pair in sorted(self._migrations):
            stages = self._migrations[pair]
            crossed = [st.name for st in stages if st.name in self.dead]
            if crossed:
                problems.append({
                    "name": "route_avoids_dead",
                    "message": (
                        f"migrated route {pair[0]}->{pair[1]} crosses "
                        f"dead link(s) {crossed}"
                    ),
                    "details": {
                        "src": pair[0], "dst": pair[1], "dead": crossed,
                    },
                })
            for st in stages:
                res = st.resource
                if res is not None and self.links.get(res.name) is not res:
                    problems.append({
                        "name": "links_closed",
                        "message": (
                            f"migrated route {pair[0]}->{pair[1]} uses "
                            f"unregistered link {res.name or 'anonymous'!r}"
                        ),
                        "details": {
                            "src": pair[0], "dst": pair[1], "link": res.name,
                        },
                    })
        return problems


class CrossbarTopology(Topology):
    """Single-switch fabric connecting ``n_nodes`` nodes.

    Both test-bed partitions attach every node to one chassis (the
    Voltaire ISR 9600 and the Quadrics QS5A both have enough ports for
    32 nodes): each node owns a duplex link — an *uplink* (node ->
    switch) and a *downlink* (switch -> node) — and a message from A to
    B occupies A's uplink and B's downlink with the switch crossing
    adding latency.  Output contention (many senders to one receiver)
    emerges naturally from the FIFO downlink resource.
    """

    kind = "crossbar"

    def __init__(self, sim: "Simulator", n_nodes: int, spec: "FabricSpec") -> None:
        super().__init__(sim, n_nodes, spec)
        self.uplinks: List[FifoResource] = [
            self._register(FifoResource(sim, name=f"up{i}"))
            for i in range(n_nodes)
        ]
        self.downlinks: List[FifoResource] = [
            self._register(FifoResource(sim, name=f"down{i}"))
            for i in range(n_nodes)
        ]

    @property
    def hops(self) -> int:
        return 1

    def max_route_stages(self) -> int:
        return 2

    def describe(self) -> str:
        return f"crossbar ({self.n_nodes} nodes, 1 chassis)"

    def link_targets(self) -> List[str]:
        names = [f"up{i}" for i in range(self.n_nodes)]
        names += [f"down{i}" for i in range(self.n_nodes)]
        return sorted(names)

    def switch_ids(self) -> List[str]:
        return ["x0"]

    def switch_links(self, switch_id: str) -> List[str]:
        if switch_id != "x0":
            raise NetworkError(f"crossbar has one switch, 'x0': {switch_id!r}")
        return self.link_targets()

    def _route(self, src: int, dst: int) -> List[Stage]:
        s = self.spec
        return [
            Stage(
                resource=self.uplinks[src],
                bandwidth=s.link_bandwidth,
                overhead=0.0,
                latency_out=s.cable_latency + s.switch_latency,
                name=f"up{src}",
                switch_latency=s.switch_latency,
            ),
            Stage(
                resource=self.downlinks[dst],
                bandwidth=s.link_bandwidth,
                overhead=0.0,
                latency_out=s.cable_latency,
                name=f"down{dst}",
            ),
        ]
