"""Topology base class and the single-chassis crossbar.

A :class:`Topology` owns the directed links of a fabric as named
:class:`~repro.sim.FifoResource` objects and answers one question for
the NIC models: :meth:`~Topology.wire_stages` — the pipeline stages a
message from ``src`` to ``dst`` occupies, one per traversed link.
Routing must be a pure deterministic function of (src, dst): both era
technologies use source-routed / deterministic tables, and the repro's
same-seed bit-identity contract depends on it.  Resource tiebreak keys
ride in from :func:`repro.sim.transfer`, which stamps each stage's
grant with ``(message key, stage index)`` for the race sanitizer.

Inter-switch and torus links are created lazily on first use and
registered under ``link.*`` resource names (so occupancy shows up as
``resource.link.*`` telemetry); node up/downlinks keep their historical
``up{i}`` / ``down{i}`` names, which golden tests pin.

:meth:`Topology.check_invariants` audits a bounded sample of the routes
a run actually used: repeated lookups must return identical resource
chains, every stage resource must be registered with the topology, and
hop counts must stay within the topology's own bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..errors import ConfigurationError, NetworkError
from ..sim import FifoResource, Stage

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.fabric import FabricSpec
    from ..sim import Simulator

#: Routed (src, dst) pairs remembered for end-of-run invariant checks.
#: Bounded so all-to-all traffic at 1024+ ranks cannot hoard memory.
ROUTE_SAMPLE_LIMIT = 512


class Topology:
    """Base class: a set of nodes joined by directed FIFO links."""

    #: Campaign-facing kind tag (matches ``TopologySpec.kind``).
    kind = "abstract"

    def __init__(self, sim: "Simulator", n_nodes: int, spec: "FabricSpec") -> None:
        if n_nodes < 1:
            raise ConfigurationError("fabric needs at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        self.spec = spec
        #: Every link resource of the fabric, by resource name.  Node
        #: links are registered eagerly; switch-to-switch links appear
        #: on first route that crosses them (deterministic, since
        #: routing and traffic are).
        self.links: Dict[str, FifoResource] = {}
        #: Insertion-ordered sample of routed (src, dst) pairs.
        self._routed: Dict[Tuple[int, int], None] = {}

    # -- link bookkeeping --------------------------------------------------

    def _link(self, name: str) -> FifoResource:
        """The directed link resource called ``name`` (created on demand)."""
        res = self.links.get(name)
        if res is None:
            res = FifoResource(self.sim, name=name)
            self.links[name] = res
        return res

    def _register(self, res: FifoResource) -> FifoResource:
        """Register an eagerly-created link under its resource name."""
        self.links[res.name] = res
        return res

    # -- routing -----------------------------------------------------------

    def wire_stages(self, src: int, dst: int) -> List[Stage]:
        """Pipeline stages for the wire portion of a src -> dst message.

        Same-node (NIC loopback) paths return an empty list: the message
        never leaves the adapter, which is how both era MPI stacks
        handled intra-node traffic on these NICs.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        if len(self._routed) < ROUTE_SAMPLE_LIMIT:
            self._routed[(src, dst)] = None
        return self._route(src, dst)

    def _route(self, src: int, dst: int) -> List[Stage]:
        """The deterministic stage chain for distinct, in-range nodes."""
        raise NotImplementedError

    def path_latency(self, src: int, dst: int) -> float:
        """Pure propagation latency of the path (no serialization)."""
        return sum(st.latency_out for st in self.wire_stages(src, dst))

    @property
    def hops(self) -> int:
        """Worst-case switch crossings between two distinct nodes."""
        raise NotImplementedError

    def max_route_stages(self) -> int:
        """Upper bound on the stage count of any route."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable topology summary for reports."""
        return f"{self.kind} ({self.n_nodes} nodes)"

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise NetworkError(f"node {node} outside fabric of {self.n_nodes}")

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> List[dict]:
        """Topology-level end-of-run checks over the sampled routes.

        Returns plain problem dicts (``name``/``message``/``details``)
        like the NIC and MPI-impl hooks; aggregated by
        :func:`repro.analysis.check_invariants` under the ``topology``
        subsystem.
        """
        problems: List[dict] = []
        bound = self.max_route_stages()
        for src, dst in sorted(self._routed):
            first = [st.resource for st in self._route(src, dst)]
            second = [st.resource for st in self._route(src, dst)]
            if first != second:
                problems.append({
                    "name": "route_deterministic",
                    "message": f"route {src}->{dst} changed between lookups",
                    "details": {"src": src, "dst": dst},
                })
                continue
            stages = self._route(src, dst)
            if len(stages) > bound:
                problems.append({
                    "name": "hop_bound",
                    "message": (
                        f"route {src}->{dst} crosses {len(stages)} links, "
                        f"beyond the topology bound of {bound}"
                    ),
                    "details": {"src": src, "dst": dst, "stages": len(stages)},
                })
            for st in stages:
                res = st.resource
                if res is not None and self.links.get(res.name) is not res:
                    problems.append({
                        "name": "links_closed",
                        "message": (
                            f"route {src}->{dst} uses unregistered link "
                            f"{res.name or 'anonymous'!r}"
                        ),
                        "details": {"src": src, "dst": dst, "link": res.name},
                    })
        return problems


class CrossbarTopology(Topology):
    """Single-switch fabric connecting ``n_nodes`` nodes.

    Both test-bed partitions attach every node to one chassis (the
    Voltaire ISR 9600 and the Quadrics QS5A both have enough ports for
    32 nodes): each node owns a duplex link — an *uplink* (node ->
    switch) and a *downlink* (switch -> node) — and a message from A to
    B occupies A's uplink and B's downlink with the switch crossing
    adding latency.  Output contention (many senders to one receiver)
    emerges naturally from the FIFO downlink resource.
    """

    kind = "crossbar"

    def __init__(self, sim: "Simulator", n_nodes: int, spec: "FabricSpec") -> None:
        super().__init__(sim, n_nodes, spec)
        self.uplinks: List[FifoResource] = [
            self._register(FifoResource(sim, name=f"up{i}"))
            for i in range(n_nodes)
        ]
        self.downlinks: List[FifoResource] = [
            self._register(FifoResource(sim, name=f"down{i}"))
            for i in range(n_nodes)
        ]

    @property
    def hops(self) -> int:
        return 1

    def max_route_stages(self) -> int:
        return 2

    def describe(self) -> str:
        return f"crossbar ({self.n_nodes} nodes, 1 chassis)"

    def _route(self, src: int, dst: int) -> List[Stage]:
        s = self.spec
        return [
            Stage(
                resource=self.uplinks[src],
                bandwidth=s.link_bandwidth,
                overhead=0.0,
                latency_out=s.cable_latency + s.switch_latency,
                name=f"up{src}",
                switch_latency=s.switch_latency,
            ),
            Stage(
                resource=self.downlinks[dst],
                bandwidth=s.link_bandwidth,
                overhead=0.0,
                latency_out=s.cable_latency,
                name=f"down{dst}",
            ),
        ]
