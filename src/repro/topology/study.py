"""Simulated-vs-extrapolated scaling on multi-stage fabrics.

Figure 8 of the paper extends the measured 32-node efficiency trend "out
to 8192 processors, assuming the scaling trends continue exactly as they
did" — a guess the authors call probably optimistic.  With real
topologies the repro can *simulate* the large machine instead:
:class:`TopologyScalingStudy` runs one app (ping-pong, b_eff, sweep3d,
...) at a ladder of rank counts on one :class:`~.spec.TopologySpec`,
fits :func:`repro.core.extrapolate.fit_trend` on the small counts only,
and reports simulated and extrapolated efficiency side by side at the
large ones — the first place where the 2004 methodology's guess can be
checked against a contention-exact answer.

Efficiency convention follows :mod:`repro.core.efficiency`: fixed-size
apps (sweep3d, NPB) normalize to linear speedup from the smallest rank
count; scaled-size apps (LAMMPS) to flat time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .spec import TopologySpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.extrapolate import TrendFit


@dataclass(frozen=True)
class TopologyScalingPoint:
    """One rank count: simulated truth next to the trend's guess."""

    ranks: int
    time_us: float
    efficiency: float
    #: The trend fit's answer at this count (None below the fit window,
    #: where the trend is *defined by* the simulation).
    extrapolated: Optional[float]
    #: True when this point helped define the trend.
    fitted: bool
    #: Kernel events processed (the cost of simulating this point).
    events: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ranks": self.ranks,
            "time_us": self.time_us,
            "efficiency": self.efficiency,
            "extrapolated": self.extrapolated,
            "fitted": self.fitted,
            "events": self.events,
        }


@dataclass
class TopologyScalingResult:
    """Outcome of one :class:`TopologyScalingStudy` run."""

    app: str
    network: str
    topology: str
    mode: str
    points: List[TopologyScalingPoint] = field(default_factory=list)
    fit: Optional[TrendFit] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "network": self.network,
            "topology": self.topology,
            "mode": self.mode,
            "points": [p.to_dict() for p in self.points],
            "fit": (
                {
                    "intercept": self.fit.intercept,
                    "slope_per_doubling": self.fit.slope_per_doubling,
                }
                if self.fit
                else None
            ),
        }

    def table(self) -> str:
        """Plain-text simulated-vs-extrapolated comparison."""
        lines = [
            f"{self.app} on {self.network}, {self.topology} ({self.mode}-size)",
            f"{'ranks':>6}  {'time (us)':>12}  {'sim eff':>8}  "
            f"{'trend eff':>9}  {'gap':>7}",
        ]
        for p in self.points:
            trend = f"{100 * p.extrapolated:8.1f}%" if p.extrapolated is not None else "   (fit)"
            gap = (
                f"{100 * (p.efficiency - p.extrapolated):+6.1f}%"
                if p.extrapolated is not None
                else "       "
            )
            lines.append(
                f"{p.ranks:>6}  {p.time_us:>12.1f}  {100 * p.efficiency:7.1f}%  "
                f"{trend:>9}  {gap:>7}"
            )
        return "\n".join(lines)


class TopologyScalingStudy:
    """Simulate one app across rank counts on one topology.

    ``fit_through`` bounds the trend-fit window: counts up to and
    including it play the role of the paper's measured 32 nodes, larger
    counts are where extrapolation used to be the only answer.  The
    default fits on everything but the largest count.
    """

    def __init__(
        self,
        app: str = "sweep3d",
        app_args: Optional[Dict[str, Any]] = None,
        network: str = "elan",
        rank_counts: Tuple[int, ...] = (32, 64, 128),
        topology: Optional[TopologySpec] = None,
        seed: int = 1,
        mode: str = "fixed",
        fit_through: int = 0,
        tail_points: int = 3,
    ) -> None:
        if len(rank_counts) < 2:
            raise ConfigurationError("need at least two rank counts")
        if list(rank_counts) != sorted(set(rank_counts)):
            raise ConfigurationError("rank counts must be strictly increasing")
        if mode not in ("fixed", "scaled"):
            raise ConfigurationError(f"mode must be 'fixed' or 'scaled': {mode}")
        self.app = app
        self.app_args = dict(app_args or {})
        self.network = network
        self.rank_counts = tuple(rank_counts)
        self.topology = topology or TopologySpec()
        self.seed = seed
        self.mode = mode
        self.fit_through = fit_through or self.rank_counts[-2]
        self.tail_points = tail_points
        if not any(n <= self.fit_through for n in rank_counts[:2]):
            raise ConfigurationError(
                "fit window excludes even the smallest counts"
            )

    def run(
        self,
        max_events: Optional[int] = None,
        wall_limit_s: Optional[float] = None,
        check_invariants: bool = False,
    ) -> TopologyScalingResult:
        """Simulate every rank count; returns the comparison table."""
        # Imported here, not at module level: the campaign and core
        # layers sit above the topology package in the import graph.
        from ..campaign.programs import build_program
        from ..core.efficiency import fixed_efficiency, scaled_efficiency
        from ..core.extrapolate import fit_trend
        from ..mpi.machine import Machine

        program = build_program(self.app, self.app_args)
        times: List[Tuple[int, float]] = []
        events: Dict[int, int] = {}
        described = ""
        for ranks in self.rank_counts:
            machine = Machine(
                self.network,
                ranks,
                ppn=1,
                seed=self.seed,
                topology=self.topology,
            )
            described = machine.fabric.describe()
            outcome = machine.run(
                program,
                max_events=max_events,
                wall_limit_s=wall_limit_s,
                check_invariants=check_invariants,
            )
            numeric = [v for v in outcome.values if isinstance(v, (int, float))]
            if not numeric:
                raise ConfigurationError(
                    f"app {self.app!r} returned no numeric rank values"
                )
            times.append((ranks, float(max(numeric))))
            events[ranks] = machine.sim.events_processed

        base_n, base_t = times[0]
        if self.mode == "fixed":
            effs = fixed_efficiency(base_n, base_t, times)
        else:
            effs = scaled_efficiency(base_t, times)
        fitted_pairs = [(n, e) for n, e in effs if n <= self.fit_through]
        fit = (
            fit_trend(fitted_pairs, self.tail_points)
            if len(fitted_pairs) >= 2
            else None
        )
        result = TopologyScalingResult(
            app=self.app,
            network=self.network,
            topology=described,
            mode=self.mode,
            fit=fit,
        )
        for (ranks, t), (_, eff) in zip(times, effs):
            in_fit = ranks <= self.fit_through
            result.points.append(
                TopologyScalingPoint(
                    ranks=ranks,
                    time_us=t,
                    efficiency=eff,
                    extrapolated=(
                        fit.efficiency_at(ranks)
                        if fit is not None and not in_fit
                        else None
                    ),
                    fitted=in_fit,
                    events=events[ranks],
                )
            )
        return result
