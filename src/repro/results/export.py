"""Export data series to CSV or plain dictionaries (JSON-ready)."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence

from .series import DataSeries


def series_to_csv(series_list: Sequence[DataSeries]) -> str:
    """Long-format CSV: label, x, y — one row per point.

    Written with the :mod:`csv` module so labels containing commas,
    quotes or newlines stay one parseable field.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    if series_list:
        x_name = series_list[0].x_name
        y_name = series_list[0].y_name
    else:
        x_name, y_name = "x", "y"
    writer.writerow(["series", x_name, y_name])
    for s in series_list:
        for xi, yi in zip(s.x, s.y):
            writer.writerow([s.label, repr(xi), repr(yi)])
    return out.getvalue()


def series_to_dict(series_list: Sequence[DataSeries]) -> List[Dict]:
    """JSON-serializable list of series dictionaries."""
    return [
        {
            "label": s.label,
            "x_name": s.x_name,
            "y_name": s.y_name,
            "x": list(s.x),
            "y": list(s.y),
        }
        for s in series_list
    ]
