"""Export data series to CSV or plain dictionaries (JSON-ready)."""

from __future__ import annotations

import io
from typing import Dict, List, Sequence

from .series import DataSeries


def series_to_csv(series_list: Sequence[DataSeries]) -> str:
    """Long-format CSV: label, x, y — one row per point."""
    out = io.StringIO()
    if series_list:
        x_name = series_list[0].x_name
        y_name = series_list[0].y_name
    else:
        x_name, y_name = "x", "y"
    out.write(f"series,{x_name},{y_name}\n")
    for s in series_list:
        for xi, yi in zip(s.x, s.y):
            out.write(f"{s.label},{xi!r},{yi!r}\n")
    return out.getvalue()


def series_to_dict(series_list: Sequence[DataSeries]) -> List[Dict]:
    """JSON-serializable list of series dictionaries."""
    return [
        {
            "label": s.label,
            "x_name": s.x_name,
            "y_name": s.y_name,
            "x": list(s.x),
            "y": list(s.y),
        }
        for s in series_list
    ]
