"""Terminal line charts for data series.

The paper's figures are log-x line plots; this renders the same shape in
a terminal so `repro-report --plots` and the examples can show curves,
not just tables.  Pure string output, deterministic, no dependencies.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .series import DataSeries

#: Per-series markers, cycled.
MARKERS = "o+x*#@%&"


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise ConfigurationError("log axis requires positive values")
    return math.log10(value)


def ascii_plot(
    series_list: Sequence[DataSeries],
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render series as an ASCII chart with a legend.

    Points are plotted at character resolution; values between points are
    linearly interpolated along x so curves read as lines.  Zero x values
    on a log axis are dropped (the ping-pong zero-byte point).
    """
    if not series_list:
        raise ConfigurationError("nothing to plot")
    if width < 16 or height < 4:
        raise ConfigurationError("plot area too small")

    # Collect transformed points per series.
    plotted: List[List[tuple]] = []
    for s in series_list:
        pts = []
        for x, y in zip(s.x, s.y):
            if log_x and x <= 0:
                continue
            if log_y and y <= 0:
                continue
            pts.append((_transform(x, log_x), _transform(y, log_y)))
        pts.sort()
        plotted.append(pts)
    all_pts = [p for pts in plotted for p in pts]
    if not all_pts:
        raise ConfigurationError("no plottable points")
    x_min = min(p[0] for p in all_pts)
    x_max = max(p[0] for p in all_pts)
    y_min = min(p[1] for p in all_pts)
    y_max = max(p[1] for p in all_pts)
    if x_max == x_min:
        x_max += 1.0
    if y_max == y_min:
        y_max += 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(height - 1, int((1.0 - frac) * (height - 1)))

    for idx, pts in enumerate(plotted):
        marker = MARKERS[idx % len(MARKERS)]
        # Interpolate along columns between consecutive points.
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            c0, c1 = to_col(x0), to_col(x1)
            for c in range(c0, c1 + 1):
                if c1 == c0:
                    y = y1
                else:
                    t = (c - c0) / (c1 - c0)
                    y = y0 + t * (y1 - y0)
                grid[to_row(y)][c] = marker
        for x, y in pts:  # re-stamp true points over interpolation
            grid[to_row(y)][to_col(x)] = marker

    # Assemble with a y-axis gutter and x-axis line.
    def y_label(row: int) -> float:
        frac = 1.0 - row / (height - 1)
        v = y_min + frac * (y_max - y_min)
        return 10**v if log_y else v

    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        label = f"{y_label(r):>10.4g} |" if r % 4 == 0 or r == height - 1 else " " * 10 + " |"
        lines.append(label + "".join(grid[r]))
    lines.append(" " * 10 + "-" * (width + 1))
    left = 10**x_min if log_x else x_min
    right = 10**x_max if log_x else x_max
    axis = f"{left:<12.4g}{'':^{max(0, width - 24)}}{right:>12.4g}"
    lines.append(" " * 11 + axis)
    x_name = series_list[0].x_name + (" (log)" if log_x else "")
    lines.append(" " * 11 + x_name.center(width))
    for idx, s in enumerate(series_list):
        lines.append(f"  {MARKERS[idx % len(MARKERS)]} {s.label}")
    return "\n".join(lines)
