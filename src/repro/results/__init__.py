"""Result containers and export helpers."""

from .export import series_to_csv, series_to_dict
from .plot import ascii_plot
from .series import DataSeries, RepStats, mean_of

__all__ = [
    "DataSeries",
    "RepStats",
    "mean_of",
    "series_to_csv",
    "series_to_dict",
    "ascii_plot",
]
