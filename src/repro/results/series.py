"""Result containers: labelled data series and repetition statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


@dataclass
class DataSeries:
    """One labelled curve: parallel x and y vectors plus metadata."""

    label: str
    x: List[float]
    y: List[float]
    x_name: str = "x"
    y_name: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )

    def at(self, x: float) -> float:
        """The y value at an exact x (raises KeyError if absent)."""
        for xi, yi in zip(self.x, self.y):
            if xi == x:
                return yi
        raise KeyError(f"x={x} not in series {self.label!r}")

    def scaled(self, factor: float, label: Optional[str] = None) -> "DataSeries":
        """A copy with every y multiplied by ``factor``."""
        return DataSeries(
            label=label or self.label,
            x=list(self.x),
            y=[v * factor for v in self.y],
            x_name=self.x_name,
            y_name=self.y_name,
        )

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class RepStats:
    """Mean/min/max over benchmark repetitions (the paper averages 4)."""

    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ConfigurationError("no repetitions recorded")
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def spread(self) -> float:
        """Relative spread (max-min)/mean; sanity metric for determinism."""
        m = self.mean
        return (self.maximum - self.minimum) / m if m else 0.0


def mean_of(values: Sequence[float]) -> float:
    """Arithmetic mean with an explicit empty check."""
    vals = list(values)
    if not vals:
        raise ConfigurationError("mean of empty sequence")
    return sum(vals) / len(vals)
