"""Switch-count arithmetic for constant-bisection fabrics.

Networks are built either from one chassis (when it has enough ports) or
as a two-level folded Clos: leaf switches dedicate half their ports to
hosts and half to uplinks; spine switches aggregate the uplinks.  Counts
are ceilings — you buy whole switches — which produces the step functions
visible in the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CostModelError


@dataclass(frozen=True)
class SwitchCount:
    """Bill of switching materials for one network size."""

    leaves: int
    spines: int
    #: Inter-switch links (cables beyond the host cables).
    isl_cables: int

    @property
    def total_switches(self) -> int:
        return self.leaves + self.spines


def single_chassis(n_nodes: int, radix: int) -> SwitchCount:
    """One chassis serving every node directly."""
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    if n_nodes > radix:
        raise CostModelError(
            f"{n_nodes} nodes exceed a single {radix}-port chassis"
        )
    return SwitchCount(leaves=1, spines=0, isl_cables=0)


def two_level(n_nodes: int, leaf_radix: int, spine_radix: int) -> SwitchCount:
    """Folded Clos with half-and-half leaves (full bisection)."""
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    if leaf_radix < 2 or spine_radix < 1:
        raise CostModelError("bad switch radixes")
    down_per_leaf = leaf_radix // 2
    if down_per_leaf < 1:
        raise CostModelError(f"leaf radix {leaf_radix} too small")
    max_nodes = down_per_leaf * spine_radix
    if n_nodes > max_nodes:
        raise CostModelError(
            f"{n_nodes} nodes exceed a two-level fabric of "
            f"{leaf_radix}/{spine_radix}-port switches (max {max_nodes})"
        )
    leaves = -(-n_nodes // down_per_leaf)
    uplinks = leaves * (leaf_radix - down_per_leaf)
    spines = -(-uplinks // spine_radix)
    return SwitchCount(leaves=leaves, spines=spines, isl_cables=uplinks)


def best_fabric(n_nodes: int, radix: int, spine_radix: int = 0) -> SwitchCount:
    """Single chassis when possible, else a two-level Clos.

    ``spine_radix`` defaults to ``radix`` (homogeneous switches).
    """
    if spine_radix == 0:
        spine_radix = radix
    if n_nodes <= radix:
        return single_chassis(n_nodes, radix)
    return two_level(n_nodes, radix, spine_radix)


def max_two_level_nodes(leaf_radix: int, spine_radix: int) -> int:
    """Largest network a two-level fabric of these switches supports."""
    return (leaf_radix // 2) * spine_radix
