"""Switch-count arithmetic for constant-bisection fabrics.

Networks are built either from one chassis (when it has enough ports) or
as a two-level folded Clos: leaf switches dedicate half their ports to
hosts and half to uplinks; spine switches aggregate the uplinks.  Counts
are ceilings — you buy whole switches — which produces the step functions
visible in the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CostModelError


@dataclass(frozen=True)
class SwitchCount:
    """Bill of switching materials for one network size."""

    leaves: int
    spines: int
    #: Inter-switch links (cables beyond the host cables).
    isl_cables: int
    #: Core-layer switches (three-level fat trees only).
    cores: int = 0

    @property
    def total_switches(self) -> int:
        return self.leaves + self.spines + self.cores


def single_chassis(n_nodes: int, radix: int) -> SwitchCount:
    """One chassis serving every node directly."""
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    if n_nodes > radix:
        raise CostModelError(
            f"{n_nodes} nodes exceed a single {radix}-port chassis"
        )
    return SwitchCount(leaves=1, spines=0, isl_cables=0)


def two_level(n_nodes: int, leaf_radix: int, spine_radix: int) -> SwitchCount:
    """Folded Clos with half-and-half leaves (full bisection)."""
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    if leaf_radix < 2 or spine_radix < 1:
        raise CostModelError("bad switch radixes")
    down_per_leaf = leaf_radix // 2
    if down_per_leaf < 1:
        raise CostModelError(f"leaf radix {leaf_radix} too small")
    max_nodes = down_per_leaf * spine_radix
    if n_nodes > max_nodes:
        raise CostModelError(
            f"{n_nodes} nodes exceed a two-level fabric of "
            f"{leaf_radix}/{spine_radix}-port switches (max {max_nodes})"
        )
    leaves = -(-n_nodes // down_per_leaf)
    uplinks = leaves * (leaf_radix - down_per_leaf)
    spines = -(-uplinks // spine_radix)
    return SwitchCount(leaves=leaves, spines=spines, isl_cables=uplinks)


def best_fabric(n_nodes: int, radix: int, spine_radix: int = 0) -> SwitchCount:
    """Single chassis when possible, else a two-level Clos.

    ``spine_radix`` defaults to ``radix`` (homogeneous switches).
    """
    if spine_radix == 0:
        spine_radix = radix
    if n_nodes <= radix:
        return single_chassis(n_nodes, radix)
    return two_level(n_nodes, radix, spine_radix)


def max_two_level_nodes(leaf_radix: int, spine_radix: int) -> int:
    """Largest network a two-level fabric of these switches supports."""
    return (leaf_radix // 2) * spine_radix


def three_level(n_nodes: int, radix: int) -> SwitchCount:
    """Three-level fat tree of homogeneous ``radix``-port switches.

    Pods of ``m = radix // 2`` leaves and ``m`` aggregation switches
    (each leaf sends one uplink to each agg) under a full-bisection core
    layer of ``m^2`` switches, each with one port per pod — the k-ary
    fat-tree construction, reaching ``radix * m^2`` hosts.
    """
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    if radix < 4 or radix % 2:
        raise CostModelError(f"radix must be even and >= 4: {radix}")
    m = radix // 2
    pod_capacity = m * m
    max_nodes = radix * pod_capacity
    if n_nodes > max_nodes:
        raise CostModelError(
            f"{n_nodes} nodes exceed a three-level fat tree of "
            f"{radix}-port switches (max {max_nodes})"
        )
    pods = -(-n_nodes // pod_capacity)
    leaves = -(-n_nodes // m)
    aggs = pods * m
    cores = m * m
    # Leaf uplinks (m per leaf) plus agg uplinks (m per agg).
    isl_cables = leaves * m + aggs * m
    return SwitchCount(leaves=leaves, spines=aggs, isl_cables=isl_cables, cores=cores)


def fat_tree(n_nodes: int, radix: int, levels: int) -> SwitchCount:
    """Switch counts for a fat tree of explicit depth 1, 2 or 3."""
    if levels == 1:
        return single_chassis(n_nodes, radix)
    if levels == 2:
        return two_level(n_nodes, radix, radix)
    if levels == 3:
        return three_level(n_nodes, radix)
    raise CostModelError(f"fat tree levels must be 1..3: {levels}")


def max_fat_tree_nodes(radix: int, levels: int) -> int:
    """Largest network a ``levels``-deep fat tree of this radix supports."""
    m = radix // 2
    if levels == 1:
        return radix
    if levels == 2:
        return m * radix
    if levels == 3:
        return radix * m * m
    raise CostModelError(f"fat tree levels must be 1..3: {levels}")
