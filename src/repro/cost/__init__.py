"""Cost analysis: price tables, switch arithmetic, Figure 7 curves."""

from .model import (
    CONFIGS,
    NetworkCost,
    cost_curves,
    elan4_cost,
    ib288_cost,
    ib_24_288_cost,
    ib96_cost,
    system_cost_gap,
)
from .prices import IB_PRICES, NODE_PRICE, Price, QUADRICS_PRICES, table_rows
from .switchmath import (
    SwitchCount,
    best_fabric,
    fat_tree,
    max_fat_tree_nodes,
    max_two_level_nodes,
    single_chassis,
    three_level,
    two_level,
)

__all__ = [
    "Price",
    "IB_PRICES",
    "QUADRICS_PRICES",
    "NODE_PRICE",
    "table_rows",
    "SwitchCount",
    "single_chassis",
    "two_level",
    "three_level",
    "fat_tree",
    "best_fabric",
    "max_two_level_nodes",
    "max_fat_tree_nodes",
    "NetworkCost",
    "elan4_cost",
    "ib96_cost",
    "ib_24_288_cost",
    "ib288_cost",
    "cost_curves",
    "system_cost_gap",
    "CONFIGS",
]
