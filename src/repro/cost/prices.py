"""April-2004 list prices (the paper's Tables 2 and 3).

Provenance matters: the conference scan lost several cells to OCR.  Every
:class:`Price` records whether its value is **from the paper** or an
**estimate**; estimates were chosen so the paper's stated cost outcomes
hold (Elan-4 roughly cost-competitive with IB built from 96-port
switches; a ~51% total-system gap at scale versus 24+288-port IB fabrics
with $2,500 nodes).  See DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Price:
    """One catalogue line item."""

    item: str
    dollars: float
    #: True when the number is legible in the paper's table.
    from_paper: bool
    note: str = ""

    def __post_init__(self) -> None:
        if self.dollars < 0:
            raise ValueError(f"negative price for {self.item!r}")


#: Table 2 — InfiniBand list prices.
IB_PRICES: Dict[str, Price] = {
    "hca": Price("Voltaire HCA 400 4X host channel adapter", 995.0, True),
    "cable": Price("4X copper cable (host or ISL)", 175.0, True),
    "switch_24": Price(
        "24-port 4X switch (new-generation silicon)",
        6_000.0,
        False,
        "OCR-lost; chosen at ~$250/port, the post-2004 switch generation "
        "the paper credits with InfiniBand's cost drop",
    ),
    "switch_96": Price(
        "Voltaire ISR 9600 96-port switch router",
        96_000.0,
        False,
        "OCR-lost; chosen at ~$1,000/port so Elan-4 is 'relatively cost "
        "competitive' with 96-port-switch fabrics as the paper finds",
    ),
    "switch_288": Price(
        "288-port 4X switch (new-generation silicon)",
        60_000.0,
        False,
        "OCR-lost; chosen at ~$208/port",
    ),
}

#: Table 3 — Quadrics Elan-4 list prices.
QUADRICS_PRICES: Dict[str, Price] = {
    "nic": Price(
        "QM-500 Elan-4 network adapter",
        1_795.0,
        False,
        "OCR-lost; chosen so the Figure 7 parity with IB-96 holds",
    ),
    "node_chassis": Price(
        "QS5A node-level switch chassis (128-way)", 93_000.0, True
    ),
    "top_chassis": Price("Top-level switch chassis (128-way)", 110_500.0, True),
    "clock": Price("QM580 clock source", 1_800.0, True),
    "cable_5m": Price("QM581-05 EOP link cable, 5 m", 185.0, True),
    "cable_3m": Price(
        "QM581-03 EOP link cable, 3 m", 165.0, False, "OCR-lost"
    ),
}

#: The paper's lower bound for a rack-mounted dual-processor node.
NODE_PRICE = 2_500.0


def table_rows(prices: Dict[str, Price]) -> List[Tuple[str, str, str]]:
    """(item, price, provenance) rows for report rendering."""
    rows = []
    for price in prices.values():
        prov = "paper" if price.from_paper else "estimated"
        rows.append((price.item, f"${price.dollars:,.0f}", prov))
    return rows
