"""Network cost models — the paper's Section 5 and Figure 7.

Four network configurations are priced, as in the paper:

1. **Quadrics Elan-4** — QM-500 adapters; one 128-way node-level chassis
   up to 128 nodes, a federated two-level configuration (64-down leaves
   plus 128-way top-level chassis) beyond, plus a clock source.
2. **InfiniBand, 96-port switches** — the largest switch available when
   the study began (Voltaire ISR 9600).
3/4. **InfiniBand, 24-port + 288-port switches** — the newer generation
   that, per the paper, "drops the cost of InfiniBand dramatically".

``cost_per_port`` includes adapters, cables and switching (what the paper
plots); ``system_cost_per_node`` adds the $2,500 node to reproduce the
total-system comparison (~4% vs ~51% gaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..errors import CostModelError
from ..results import DataSeries
from .prices import IB_PRICES, NODE_PRICE, QUADRICS_PRICES
from .switchmath import single_chassis, two_level


@dataclass(frozen=True)
class NetworkCost:
    """Itemized network cost for one configuration at one size."""

    config: str
    n_nodes: int
    adapters: float
    cables: float
    switching: float
    extras: float = 0.0

    @property
    def total(self) -> float:
        return self.adapters + self.cables + self.switching + self.extras

    @property
    def per_port(self) -> float:
        return self.total / self.n_nodes

    def system_per_node(self, node_price: float = NODE_PRICE) -> float:
        """Per-node cost of the whole system (network + compute node)."""
        return self.per_port + node_price


def elan4_cost(n_nodes: int) -> NetworkCost:
    """Quadrics Elan-4 network cost."""
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    p = QUADRICS_PRICES
    if n_nodes <= 128:
        sw = single_chassis(n_nodes, 128)
        switching = p["node_chassis"].dollars
    else:
        # Federated: leaves run 64 down / 64 up into 128-way top chassis.
        sw = two_level(n_nodes, 128, 128)
        switching = (
            sw.leaves * p["node_chassis"].dollars
            + sw.spines * p["top_chassis"].dollars
        )
    adapters = n_nodes * p["nic"].dollars
    cables = n_nodes * p["cable_5m"].dollars + sw.isl_cables * p["cable_3m"].dollars
    return NetworkCost(
        config="Quadrics Elan-4",
        n_nodes=n_nodes,
        adapters=adapters,
        cables=cables,
        switching=switching,
        extras=p["clock"].dollars,
    )


def _ib_cost(
    n_nodes: int,
    config: str,
    leaf_key: str,
    leaf_radix: int,
    spine_key: str,
    spine_radix: int,
) -> NetworkCost:
    if n_nodes < 1:
        raise CostModelError("need at least one node")
    p = IB_PRICES
    if n_nodes <= leaf_radix:
        sw = single_chassis(n_nodes, leaf_radix)
        switching = p[leaf_key].dollars
    else:
        sw = two_level(n_nodes, leaf_radix, spine_radix)
        switching = (
            sw.leaves * p[leaf_key].dollars + sw.spines * p[spine_key].dollars
        )
    adapters = n_nodes * p["hca"].dollars
    cables = (n_nodes + sw.isl_cables) * p["cable"].dollars
    return NetworkCost(
        config=config,
        n_nodes=n_nodes,
        adapters=adapters,
        cables=cables,
        switching=switching,
    )


def ib96_cost(n_nodes: int) -> NetworkCost:
    """InfiniBand from 96-port switches (first-generation pricing)."""
    return _ib_cost(
        n_nodes, "4X InfiniBand (96-port switches)", "switch_96", 96,
        "switch_96", 96,
    )


def ib_24_288_cost(n_nodes: int) -> NetworkCost:
    """InfiniBand from 24-port leaves + 288-port spines (new generation).

    Below 24 nodes a single 24-port switch suffices; beyond, 24-port
    leaves feed 288-port spines (max 12 * 288 = 3,456 nodes).
    """
    return _ib_cost(
        n_nodes, "4X InfiniBand (24+288-port switches)", "switch_24", 24,
        "switch_288", 288,
    )


def ib288_cost(n_nodes: int) -> NetworkCost:
    """InfiniBand from 288-port switches only."""
    return _ib_cost(
        n_nodes, "4X InfiniBand (288-port switches)", "switch_288", 288,
        "switch_288", 288,
    )


#: The four Figure 7 configurations, in legend order.
CONFIGS: Dict[str, Callable[[int], NetworkCost]] = {
    "Quadrics Elan-4": elan4_cost,
    "4X InfiniBand (96-port switches)": ib96_cost,
    "4X InfiniBand (24+288-port switches)": ib_24_288_cost,
    "4X InfiniBand (288-port switches)": ib288_cost,
}


def cost_curves(sizes: Sequence[int]) -> List[DataSeries]:
    """Cost-per-port curves over network sizes — Figure 7's content."""
    out = []
    for name, fn in CONFIGS.items():
        xs, ys = [], []
        for n in sizes:
            try:
                ys.append(fn(n).per_port)
                xs.append(float(n))
            except CostModelError:
                continue  # size exceeds this configuration's reach
        out.append(
            DataSeries(
                label=name, x=xs, y=ys, x_name="nodes", y_name="$ per port"
            )
        )
    return out


def system_cost_gap(n_nodes: int, node_price: float = NODE_PRICE) -> Dict[str, float]:
    """Total-system cost of Elan-4 relative to each IB option (ratios).

    The paper's headline: ~4% against 96-port fabrics, ~51% against the
    new-generation switch combination, at scale with $2,500 nodes.
    """
    elan = elan4_cost(n_nodes).system_per_node(node_price)
    return {
        "vs_96_port": elan / ib96_cost(n_nodes).system_per_node(node_price) - 1.0,
        "vs_24_288": elan
        / ib_24_288_cost(n_nodes).system_per_node(node_price)
        - 1.0,
    }
