"""Deterministic fault injection and the recovery machinery it exercises.

The paper compares two fabrics that differ as much in *how they recover*
as in how fast they go: 4X InfiniBand reliable connections retransmit
end-to-end with a per-QP timeout/retry counter (exhaustion surfaces as a
transport error), while Elan-4 detects CRC errors at the link level and
retries in NIC hardware — costing latency but invisible to MPI.  This
package injects the faults (bit errors on links, transient NIC stalls,
registration failures) and the NIC models implement the era-correct
recovery.

Everything is deterministic: a :class:`FaultPlan` is declarative and
picklable, every random draw flows through named
:class:`~repro.sim.rng.RngStreams` (one stream per link / NIC / cache,
all under the ``fault.`` prefix), so the same seed and plan produce
bit-identical runs, and a disabled plan draws *nothing* — golden
no-fault results are unchanged.

Quickstart::

    from repro import Machine
    from repro.faults import FaultPlan

    plan = FaultPlan(ber=1e-6)          # one bit error per ~125 KB per link
    machine = Machine("elan", n_nodes=2, faults=plan)
    # ... Elan absorbs the errors as link-level retry latency;
    # the same plan on "ib" retransmits end-to-end and raises
    # RetryExhaustedError once a message exceeds its retry budget.
"""

from ..errors import LinkDeadError, RetryExhaustedError, UnknownLinkError
from .hard import HardFaultState, validate_fault_targets
from .injector import FaultInjector
from .plan import FaultPlan, HardEvent
from .recovery import ib_retry_schedule, root_fault

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "HardEvent",
    "HardFaultState",
    "LinkDeadError",
    "RetryExhaustedError",
    "UnknownLinkError",
    "ib_retry_schedule",
    "root_fault",
    "validate_fault_targets",
]
