"""Declarative fault plans.

A :class:`FaultPlan` is the campaign-sweepable description of *what goes
wrong*: per-link bit-error rate, transient NIC stalls, and registration
failures, plus the knobs of each technology's recovery machinery.  Every
field is a JSON scalar so a plan rides inside a
:class:`~repro.campaign.RunSpec` (``fault.``-prefixed dotted axes, the
same convention as ``app_args.``) and crosses multiprocessing
boundaries unchanged.

The plan carries no randomness of its own — it only parameterizes the
:class:`~.injector.FaultInjector`, whose draws come from named
simulator RNG streams.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Tuple

from ..errors import ConfigurationError

#: Hard-event kinds, in the order ties at one timestamp are applied.
HARD_KINDS = ("link_down", "link_up", "switch_down")


@dataclass(frozen=True)
class HardEvent:
    """One scheduled hard failure (or repair) of a fabric element.

    ``target`` is a *stage name* for link events (``"isl:l0>s1"``,
    ``"torus.0.0.0.x-"``, ``"up3"``) or a switch id for ``switch_down``
    (``"s1"``, ``"a2"``, ``"l0"``, ``"c3"``, torus router ``"0.1.0"``,
    crossbar ``"x0"``).
    """

    at_us: float
    kind: str
    target: str


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, and how each fabric is allowed to recover.

    All rates are probabilities, all times microseconds.  The default
    plan injects nothing (``enabled`` is False) and is guaranteed not to
    consume a single random draw, so golden no-fault results stay
    bit-identical.
    """

    #: Per-bit error probability on every link direction (uplink,
    #: downlink, and inter-switch links of a two-level fabric).  An MTU
    #: packet of ``b`` bytes is corrupted with probability
    #: ``1 - (1 - ber)^(8b)``.
    ber: float = 0.0
    #: Extra per-bit error probability on the links selected by ``link``
    #: alone (composes with ``ber`` as independent error processes).
    #: Lets a campaign degrade one named ISL or torus link — a flaky
    #: cable — while the rest of the fabric stays clean.
    link_ber: float = 0.0
    #: Stage-name prefix ``link_ber`` applies to, e.g. ``"isl:l0>s1"``
    #: for one fat-tree ISL, ``"isl:"`` for every inter-switch link,
    #: ``"torus.0.0.0."`` for one node's torus ports, ``"up3"`` for a
    #: node uplink.  Required when ``link_ber`` is set.
    link: str = ""
    #: Probability that one NIC protocol operation (Elan thread-processor
    #: dispatch, HCA doorbell/DMA start) hits a transient stall.
    nic_stall_rate: float = 0.0
    #: Duration of one NIC stall.
    nic_stall_us: float = 25.0
    #: Probability that one memory-registration attempt fails
    #: transiently (IB pin-down path only; Elan has no host
    #: registration to fail).
    reg_failure_rate: float = 0.0
    #: Consecutive registration failures tolerated before the model
    #: raises :class:`~repro.errors.RegistrationError`.
    reg_retry_budget: int = 3
    #: First IB end-to-end retransmit timeout; doubles per retry
    #: (``ib_timeout_multiplier``) like the real per-QP timer.
    ib_retry_timeout_us: float = 75.0
    #: IB transport retry budget.  The hardware counter is 3 bits, so 7
    #: is the era-correct maximum.
    ib_retry_count: int = 7
    #: Exponential backoff multiplier for the IB retransmit timeout.
    ib_timeout_multiplier: float = 2.0
    #: Elan link-level retry turnaround: CRC detect + resend trigger per
    #: corrupted packet, on top of the packet's re-serialization time.
    elan_retry_turnaround_us: float = 0.4
    #: Stage name of one link to kill outright (hard failure), e.g.
    #: ``"isl:l0>s1"`` or ``"torus.0.0.0.x-"``.  Requires
    #: ``link_down_at_us``.  Unlike ``link`` this is an exact name,
    #: validated against the topology at Machine construction.
    link_down: str = ""
    #: Simulation time (us) at which ``link_down`` dies.
    link_down_at_us: float = -1.0
    #: Optional repair time for ``link_down`` (a flap).  Revival clears
    #: the liveness mask but migrated paths do NOT fail back (APM
    #: semantics: migration is one-way until re-armed).
    link_up_at_us: float = -1.0
    #: Id of one switch to kill outright (every attached link dies),
    #: e.g. ``"s1"`` (fat-tree spine), ``"a2"`` (agg), ``"1.0.0"``
    #: (torus router).  Requires ``switch_down_at_us``.
    switch_down: str = ""
    #: Simulation time (us) at which ``switch_down`` dies.
    switch_down_at_us: float = -1.0
    #: Compact multi-event schedule, ``"kind@t:target"`` joined by
    #: ``";"`` — e.g. ``"link_down@250:isl:l0>s1;link_up@400:isl:l0>s1"``.
    #: A JSON scalar so it sweeps as one campaign axis; composes with
    #: the scalar fields above.
    hard_events: str = ""
    #: Base IB path-death detection delay (per-QP timer + SM sweep
    #: abstraction); the actual delay is this scaled by a seeded jitter
    #: in [0.5, 1.5) from a ``fault.hard.detect.*`` stream.
    detect_delay_us: float = 50.0
    #: Quadrics rail count.  QsNetII clusters were commonly dual-rail;
    #: with >1 rails a dead link fails over to the other rail instead
    #: of raising :class:`~repro.errors.LinkDeadError`.
    elan_rails: int = 1
    #: Time to re-issue a transfer on the alternate rail.
    rail_switch_us: float = 200.0
    #: Link-level CRC retries Elan burns against a dead link before
    #: declaring it down (each costs one MTU re-serialization plus the
    #: retry turnaround).
    elan_dead_retry_limit: int = 8

    def __post_init__(self) -> None:
        if self.link_ber > 0.0 and not self.link:
            raise ConfigurationError("link_ber needs a link name/prefix")
        if self.link and self.link_ber <= 0.0:
            raise ConfigurationError("link is set but link_ber is zero")
        for name in ("ber", "link_ber", "nic_stall_rate", "reg_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1): {rate}"
                )
        for name in (
            "nic_stall_us",
            "ib_retry_timeout_us",
            "elan_retry_turnaround_us",
            "detect_delay_us",
            "rail_switch_us",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.reg_retry_budget < 1:
            raise ConfigurationError("reg_retry_budget must be >= 1")
        if self.ib_retry_count < 0:
            raise ConfigurationError("ib_retry_count must be >= 0")
        if self.ib_timeout_multiplier < 1.0:
            raise ConfigurationError("ib_timeout_multiplier must be >= 1")
        if self.elan_rails < 1:
            raise ConfigurationError("elan_rails must be >= 1")
        if self.elan_dead_retry_limit < 1:
            raise ConfigurationError("elan_dead_retry_limit must be >= 1")
        for target, at in (
            ("link_down", self.link_down_at_us),
            ("switch_down", self.switch_down_at_us),
        ):
            if getattr(self, target) and at < 0:
                raise ConfigurationError(
                    f"{target} is set but {target}_at_us is not"
                )
            if at >= 0 and not getattr(self, target):
                raise ConfigurationError(
                    f"{target}_at_us is set but {target} names no target"
                )
        if self.link_up_at_us >= 0:
            if not self.link_down:
                raise ConfigurationError("link_up_at_us needs link_down")
            if self.link_up_at_us <= self.link_down_at_us:
                raise ConfigurationError(
                    "link_up_at_us must be after link_down_at_us"
                )
        # Validate the compact schedule eagerly so a bad string fails at
        # plan construction, not mid-run.
        self.hard_schedule()

    @property
    def wire_faulty(self) -> bool:
        """True when any link can corrupt packets (global or targeted)."""
        return self.ber > 0.0 or self.link_ber > 0.0

    @property
    def has_hard_events(self) -> bool:
        """True when any scheduled hard failure is configured."""
        return bool(self.link_down or self.switch_down or self.hard_events)

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism can actually fire."""
        return (
            self.wire_faulty
            or self.nic_stall_rate > 0.0
            or self.reg_failure_rate > 0.0
            or self.has_hard_events
        )

    def hard_schedule(self) -> Tuple[HardEvent, ...]:
        """The hard events, merged from scalars + ``hard_events``, sorted.

        Ordering is total — ``(at_us, kind, target)`` — so two plans
        describing the same failures apply them identically regardless
        of which field carried them (determinism contract).
        """
        events = []
        if self.link_down:
            events.append(
                HardEvent(self.link_down_at_us, "link_down", self.link_down)
            )
            if self.link_up_at_us >= 0:
                events.append(
                    HardEvent(self.link_up_at_us, "link_up", self.link_down)
                )
        if self.switch_down:
            events.append(
                HardEvent(self.switch_down_at_us, "switch_down", self.switch_down)
            )
        for item in filter(None, self.hard_events.split(";")):
            kind, sep, rest = item.partition("@")
            at_text, sep2, target = rest.partition(":")
            kind = kind.strip()
            if not sep or not sep2 or not target:
                raise ConfigurationError(
                    f"bad hard event {item!r}; expected 'kind@t:target'"
                )
            if kind not in HARD_KINDS:
                raise ConfigurationError(
                    f"unknown hard event kind {kind!r}; one of {HARD_KINDS}"
                )
            try:
                at = float(at_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad hard event time {at_text!r} in {item!r}"
                ) from None
            if at < 0:
                raise ConfigurationError(f"hard event time must be >= 0: {item!r}")
            events.append(HardEvent(at, kind, target))
        return tuple(sorted(events, key=lambda e: (e.at_us, e.kind, e.target)))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (field order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a (possibly partial) field mapping."""
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields {sorted(unknown)}; "
                f"valid: {sorted(valid)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """Compact non-default-fields summary for labels and journals."""
        defaults = FaultPlan()
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        ]
        return "FaultPlan(" + ", ".join(parts) + ")" if parts else "FaultPlan()"
