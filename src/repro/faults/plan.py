"""Declarative fault plans.

A :class:`FaultPlan` is the campaign-sweepable description of *what goes
wrong*: per-link bit-error rate, transient NIC stalls, and registration
failures, plus the knobs of each technology's recovery machinery.  Every
field is a JSON scalar so a plan rides inside a
:class:`~repro.campaign.RunSpec` (``fault.``-prefixed dotted axes, the
same convention as ``app_args.``) and crosses multiprocessing
boundaries unchanged.

The plan carries no randomness of its own — it only parameterizes the
:class:`~.injector.FaultInjector`, whose draws come from named
simulator RNG streams.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, and how each fabric is allowed to recover.

    All rates are probabilities, all times microseconds.  The default
    plan injects nothing (``enabled`` is False) and is guaranteed not to
    consume a single random draw, so golden no-fault results stay
    bit-identical.
    """

    #: Per-bit error probability on every link direction (uplink,
    #: downlink, and inter-switch links of a two-level fabric).  An MTU
    #: packet of ``b`` bytes is corrupted with probability
    #: ``1 - (1 - ber)^(8b)``.
    ber: float = 0.0
    #: Extra per-bit error probability on the links selected by ``link``
    #: alone (composes with ``ber`` as independent error processes).
    #: Lets a campaign degrade one named ISL or torus link — a flaky
    #: cable — while the rest of the fabric stays clean.
    link_ber: float = 0.0
    #: Stage-name prefix ``link_ber`` applies to, e.g. ``"isl:l0>s1"``
    #: for one fat-tree ISL, ``"isl:"`` for every inter-switch link,
    #: ``"torus.0.0.0."`` for one node's torus ports, ``"up3"`` for a
    #: node uplink.  Required when ``link_ber`` is set.
    link: str = ""
    #: Probability that one NIC protocol operation (Elan thread-processor
    #: dispatch, HCA doorbell/DMA start) hits a transient stall.
    nic_stall_rate: float = 0.0
    #: Duration of one NIC stall.
    nic_stall_us: float = 25.0
    #: Probability that one memory-registration attempt fails
    #: transiently (IB pin-down path only; Elan has no host
    #: registration to fail).
    reg_failure_rate: float = 0.0
    #: Consecutive registration failures tolerated before the model
    #: raises :class:`~repro.errors.RegistrationError`.
    reg_retry_budget: int = 3
    #: First IB end-to-end retransmit timeout; doubles per retry
    #: (``ib_timeout_multiplier``) like the real per-QP timer.
    ib_retry_timeout_us: float = 75.0
    #: IB transport retry budget.  The hardware counter is 3 bits, so 7
    #: is the era-correct maximum.
    ib_retry_count: int = 7
    #: Exponential backoff multiplier for the IB retransmit timeout.
    ib_timeout_multiplier: float = 2.0
    #: Elan link-level retry turnaround: CRC detect + resend trigger per
    #: corrupted packet, on top of the packet's re-serialization time.
    elan_retry_turnaround_us: float = 0.4

    def __post_init__(self) -> None:
        if self.link_ber > 0.0 and not self.link:
            raise ConfigurationError("link_ber needs a link name/prefix")
        if self.link and self.link_ber <= 0.0:
            raise ConfigurationError("link is set but link_ber is zero")
        for name in ("ber", "link_ber", "nic_stall_rate", "reg_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1): {rate}"
                )
        for name in (
            "nic_stall_us",
            "ib_retry_timeout_us",
            "elan_retry_turnaround_us",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.reg_retry_budget < 1:
            raise ConfigurationError("reg_retry_budget must be >= 1")
        if self.ib_retry_count < 0:
            raise ConfigurationError("ib_retry_count must be >= 0")
        if self.ib_timeout_multiplier < 1.0:
            raise ConfigurationError("ib_timeout_multiplier must be >= 1")

    @property
    def wire_faulty(self) -> bool:
        """True when any link can corrupt packets (global or targeted)."""
        return self.ber > 0.0 or self.link_ber > 0.0

    @property
    def enabled(self) -> bool:
        """True when any fault mechanism can actually fire."""
        return (
            self.wire_faulty
            or self.nic_stall_rate > 0.0
            or self.reg_failure_rate > 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (field order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a (possibly partial) field mapping."""
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields {sorted(unknown)}; "
                f"valid: {sorted(valid)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """Compact non-default-fields summary for labels and journals."""
        defaults = FaultPlan()
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        ]
        return "FaultPlan(" + ", ".join(parts) + ")" if parts else "FaultPlan()"
