"""Hard-failure machinery: scheduled link/switch death and liveness.

Transient faults (BER, stalls) perturb timing; hard faults remove
fabric.  :class:`HardFaultState` owns the runtime side of a
:class:`~.plan.FaultPlan`'s hard schedule:

* a daemon driver process applies each :class:`~.plan.HardEvent` at its
  time, flipping the topology's liveness mask atomically (no resource is
  touched, so the event itself is invisible to the race sanitizer);
* per-link down intervals answer the question recovery code asks —
  *was this link dead at any point while my attempt was on the wire?*;
* seeded detection delays (``fault.hard.detect.*`` streams) keep
  failover timing deterministic per seed;
* counters feed :meth:`~.injector.FaultInjector.stats` and the chaos
  study's recovery-time column.

Determinism contract: the schedule is a pure function of the plan, the
liveness mask is a pure function of (schedule, time), and alternate
routes are a pure function of (src, dst, mask) — so serial == parallel
and same-seed bit-identity survive hard failures.

:func:`validate_fault_targets` is the eager half: at Machine
construction every plan target is resolved against the topology and a
typo raises :class:`~repro.errors.UnknownLinkError` naming near-miss
candidates, instead of a fault that silently never fires.
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING, Dict, List

from ..errors import ConfigurationError, UnknownLinkError
from .plan import FaultPlan, HardEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator
    from ..topology.base import Topology

_INF = float("inf")


class HardFaultState:
    """Runtime state of one machine's scheduled hard failures."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.schedule = plan.hard_schedule()
        #: Per-link down intervals as ``[start, end]`` pairs; ``end`` is
        #: +inf while the link is still dead.
        self.down_intervals: Dict[str, List[List[float]]] = {}
        self.events_applied = 0
        # -- statistics ----------------------------------------------------
        self.links_killed = 0
        self.switches_killed = 0
        self.hard_failed_attempts = 0
        self.failovers = 0
        self.failover_us = 0.0
        self.detect_us = 0.0
        self.rail_switches = 0
        self.link_dead_errors = 0
        #: Recoveries started but not finished — must drain to zero by
        #: end of run ("all rerouted messages drained" invariant).
        self.pending_recoveries = 0

    @property
    def active(self) -> bool:
        """True when the plan schedules at least one hard event."""
        return bool(self.schedule)

    # -- schedule driver ---------------------------------------------------

    def arm(self, sim: "Simulator", topology: "Topology") -> None:
        """Spawn the daemon process that applies the schedule on time."""
        if self.schedule:
            sim.spawn(
                self._driver(sim, topology), name="fault.hard.driver",
                daemon=True,
            )

    def _driver(self, sim, topology):
        for event in self.schedule:
            delay = event.at_us - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self._apply(sim, topology, event)

    def _apply(self, sim, topology, event: HardEvent) -> None:
        if event.kind == "switch_down":
            names = topology.switch_links(event.target)
            self.switches_killed += 1
        else:
            names = [event.target]
        for name in names:
            if event.kind == "link_up":
                if topology.revive_link(name):
                    intervals = self.down_intervals.get(name)
                    if intervals and intervals[-1][1] == _INF:
                        intervals[-1][1] = sim.now
            elif topology.kill_link(name):
                self.links_killed += 1
                self.down_intervals.setdefault(name, []).append([sim.now, _INF])
        self.events_applied += 1
        sim.trace.log(
            sim.now, "fault.hard",
            f"{event.kind} {event.target} "
            f"({len(names)} link(s), scheduled t={event.at_us:g}us)",
        )

    # -- queries -----------------------------------------------------------

    def dead_during(self, link: str, t0: float, t1: float) -> bool:
        """Was ``link`` dead at any instant of the open window (t0, t1)?

        Recovery code calls this with a transfer's start/end times: a
        kill landing exactly at the delivery instant does not fail the
        attempt (the last bit was already off the wire).
        """
        for start, end in self.down_intervals.get(link, ()):
            if start < t1 and end > t0:
                return True
        return False

    def detection_delay(self, sim: "Simulator", component: str) -> float:
        """Seeded path-death detection delay for one recovering engine.

        Base ``detect_delay_us`` scaled by jitter in [0.5, 1.5) from the
        component's own ``fault.hard.detect.*`` stream, so concurrent
        failovers stagger deterministically.
        """
        base = self.plan.detect_delay_us
        if base <= 0.0:
            return 0.0
        stream = sim.rng.stream(f"fault.hard.detect.{component}")
        return base * (0.5 + float(stream.random()))

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> List[dict]:
        """End-of-run checks (plain dicts, ``faults`` subsystem)."""
        problems: List[dict] = []
        if self.pending_recoveries:
            problems.append({
                "name": "recoveries_drained",
                "message": (
                    f"{self.pending_recoveries} failover recover(ies) "
                    "still in flight at end of run"
                ),
                "details": {"pending": self.pending_recoveries},
            })
        if self.events_applied != len(self.schedule):
            problems.append({
                "name": "schedule_applied",
                "message": (
                    f"only {self.events_applied} of {len(self.schedule)} "
                    "hard events were applied"
                ),
                "details": {
                    "applied": self.events_applied,
                    "scheduled": len(self.schedule),
                },
            })
        return problems

    def stats(self) -> Dict[str, float]:
        """JSON-ready hard-failure tallies (merged into injector stats)."""
        return {
            "links_killed": self.links_killed,
            "switches_killed": self.switches_killed,
            "hard_failed_attempts": self.hard_failed_attempts,
            "failovers": self.failovers,
            "failover_us": self.failover_us,
            "failover_detect_us": self.detect_us,
            "rail_switches": self.rail_switches,
            "link_dead_errors": self.link_dead_errors,
        }


def _unknown(kind: str, target: str, valid) -> UnknownLinkError:
    candidates = difflib.get_close_matches(target, sorted(valid), n=3, cutoff=0.3)
    hint = f"; did you mean {candidates}?" if candidates else ""
    return UnknownLinkError(
        f"fault plan targets unknown {kind} {target!r}{hint}",
        target=target, candidates=candidates,
    )


def validate_fault_targets(plan: FaultPlan, topology: "Topology") -> None:
    """Resolve every plan target against ``topology`` or raise eagerly.

    ``plan.link`` is a stage-name *prefix* (valid when any link name
    starts with it); hard-event link targets are exact stage names;
    ``switch_down`` targets must be known switch ids.  Raises
    :class:`~repro.errors.UnknownLinkError` (a ``ValueError``) naming
    up to three near-miss candidates.
    """
    link_names = None
    if plan.link:
        link_names = topology.link_targets()
        if not any(name.startswith(plan.link) for name in link_names):
            raise _unknown("link prefix", plan.link, link_names)
    schedule = plan.hard_schedule()
    if not schedule:
        return
    switch_ids = None
    for event in schedule:
        if event.kind == "switch_down":
            if switch_ids is None:
                switch_ids = set(topology.switch_ids())
            if event.target not in switch_ids:
                raise _unknown("switch", event.target, switch_ids)
        else:
            if link_names is None:
                link_names = topology.link_targets()
            if event.target not in link_names:
                raise _unknown("link", event.target, link_names)


__all__ = ["HardEvent", "HardFaultState", "validate_fault_targets"]
