"""Recovery-protocol helpers shared by the NIC models and tools.

The recovery *mechanisms* live where the hardware put them — end-to-end
retransmit in the IB HCA model (:mod:`repro.networks.ib.hca`),
link-level retry in the Elan NIC model (:mod:`repro.networks.elan.nic`).
This module holds the pieces both the models and the analysis tools
need: the IB timeout schedule and cause-chain inspection for surfaced
fault errors.
"""

from __future__ import annotations

from typing import Iterator, Optional, Type

from ..errors import ReproError
from .plan import FaultPlan


def ib_retry_schedule(plan: FaultPlan) -> Iterator[float]:
    """The IB per-QP retransmit timeout sequence for ``plan``.

    Yields ``ib_retry_count`` timeouts, the first at
    ``ib_retry_timeout_us`` and each subsequent one multiplied by
    ``ib_timeout_multiplier`` — the exponential per-QP timer of the real
    transport.  The sender burns one entry per lost delivery; when the
    iterator is exhausted, so is the retry budget.
    """
    timeout = plan.ib_retry_timeout_us
    for _ in range(plan.ib_retry_count):
        yield timeout
        timeout *= plan.ib_timeout_multiplier


def root_fault(
    exc: BaseException, kind: Type[BaseException] = ReproError
) -> Optional[BaseException]:
    """The deepest ``kind`` instance in ``exc``'s cause chain, if any.

    A fault raised inside a simulated NIC engine surfaces wrapped in
    :class:`~repro.errors.SimulationError` ("process X crashed"); tools
    that care *why* — e.g. the degraded-fabric benchmark detecting
    retry-budget exhaustion — walk the chain with this helper instead of
    string-matching messages.
    """
    found: Optional[BaseException] = None
    seen = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, kind):
            found = node
        node = node.__cause__ or node.__context__
    return found
