"""The seeded fault injector: every bad thing comes from a named stream.

One :class:`FaultInjector` is attached to a simulator (``sim.faults``)
when its machine is built with an enabled :class:`~.plan.FaultPlan`.
Model code asks it questions — "how many packets of this message got
corrupted on link up3?", "does this thread dispatch stall?" — and every
answer is drawn from a :class:`~repro.sim.rng.RngStreams` stream named
after the mechanism *and* the component (``fault.ber.up3``,
``fault.stall.hca2``, ``fault.reg.r1``).  Consequences:

* same seed + same plan ⇒ bit-identical fault sequences;
* streams are independent per link/NIC/rank, so adding a component does
  not perturb the faults any other component sees;
* all names live under the ``fault.`` prefix, disjoint from every
  pre-existing stream — enabling faults cannot perturb the no-fault
  randomness (jitter, b_eff patterns), and a zero rate draws nothing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from .hard import HardFaultState
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator


class FaultInjector:
    """Draws deterministic fault decisions for one simulated machine."""

    def __init__(self, sim: "Simulator", plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        #: Scheduled hard-failure state, or None when the plan carries
        #: only transient faults (keeps the soft path branch-cheap).
        self.hard = HardFaultState(plan) if plan.has_hard_events else None
        #: Cache of corruption probabilities, keyed (packet size, BER) —
        #: link-targeted plans give different links different BERs.
        self._packet_prob: Dict[tuple, float] = {}
        # -- statistics ----------------------------------------------------
        self.corrupted_packets = 0
        self.ib_retransmits = 0
        self.ib_timeout_us = 0.0
        self.elan_link_retries = 0
        self.nic_stalls = 0
        self.reg_faults = 0

    def _stream(self, name: str):
        return self.sim.rng.stream(f"fault.{name}")

    # -- link bit errors ---------------------------------------------------

    def link_ber(self, link: str) -> float:
        """The effective BER of one named link (stage name).

        The global ``ber`` composes with a matching ``link_ber`` as
        independent error processes: ``1 - (1-ber)(1-link_ber)``.
        """
        plan = self.plan
        ber = plan.ber
        if plan.link_ber > 0.0 and link.startswith(plan.link):
            ber = 1.0 - (1.0 - ber) * (1.0 - plan.link_ber)
        return ber

    def packet_error_prob(self, nbytes: int, ber: float = -1.0) -> float:
        """Corruption probability of one ``nbytes`` packet at ``ber``
        (default: the plan's global BER)."""
        if ber < 0.0:
            ber = self.plan.ber
        key = (nbytes, ber)
        p = self._packet_prob.get(key)
        if p is None:
            # 1 - (1-ber)^(8n), computed in log space for tiny BERs.
            p = -math.expm1(8.0 * nbytes * math.log1p(-ber))
            self._packet_prob[key] = p
        return p

    def packet_errors(self, link: str, nbytes: int, mtu: int) -> int:
        """Corrupted-packet count for one message crossing ``link``.

        The message is cut into MTU packets (plus one runt for the
        remainder); each is corrupted independently at the link's
        effective BER.  Zero-byte control messages still occupy one
        minimal packet.
        """
        ber = self.link_ber(link)
        if ber <= 0.0:
            return 0
        nbytes = max(nbytes, 1)
        full, rem = divmod(nbytes, mtu)
        stream = self._stream(f"ber.{link}")
        errors = 0
        if full:
            errors += int(stream.binomial(full, self.packet_error_prob(mtu, ber)))
        if rem:
            errors += int(stream.random() < self.packet_error_prob(rem, ber))
        self.corrupted_packets += errors
        return errors

    def retry_errors(self, link: str, packets: int, mtu: int) -> int:
        """Corrupted packets among ``packets`` link-level *retries*.

        Used by the Elan model: retried packets cross the same wire and
        can be corrupted again (full MTU each — retries resend whole
        packets).  Draws from the same per-link stream.
        """
        if packets <= 0:
            return 0
        ber = self.link_ber(link)
        if ber <= 0.0:
            return 0
        stream = self._stream(f"ber.{link}")
        errors = int(stream.binomial(packets, self.packet_error_prob(mtu, ber)))
        self.corrupted_packets += errors
        return errors

    # -- NIC stalls --------------------------------------------------------

    def nic_stall(self, component: str) -> float:
        """Stall duration (0 almost always) for one NIC operation.

        ``component`` names the stalling engine, e.g. ``elan3`` for the
        Elan thread processor of node 3 or ``hca0`` for node 0's HCA
        doorbell/DMA path; each gets its own stream.
        """
        if self.plan.nic_stall_rate <= 0.0:
            return 0.0
        if self._stream(f"stall.{component}").random() < self.plan.nic_stall_rate:
            self.nic_stalls += 1
            return self.plan.nic_stall_us
        return 0.0

    # -- registration failures --------------------------------------------

    def reg_failures(self, cache: str) -> int:
        """Consecutive transient failures before one registration succeeds.

        Returns a count in ``[0, reg_retry_budget]``; the budget value
        means every attempt failed and the caller must raise
        :class:`~repro.errors.RegistrationError`.  ``cache`` names the
        per-rank registration cache (its stream).
        """
        if self.plan.reg_failure_rate <= 0.0:
            return 0
        stream = self._stream(f"reg.{cache}")
        failures = 0
        while failures < self.plan.reg_retry_budget:
            if stream.random() >= self.plan.reg_failure_rate:
                break
            failures += 1
        self.reg_faults += failures
        return failures

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """JSON-ready injected/recovered tallies for journals and tests."""
        tallies = {
            "corrupted_packets": self.corrupted_packets,
            "ib_retransmits": self.ib_retransmits,
            "ib_timeout_us": self.ib_timeout_us,
            "elan_link_retries": self.elan_link_retries,
            "nic_stalls": self.nic_stalls,
            "reg_faults": self.reg_faults,
        }
        if self.hard is not None:
            tallies.update(self.hard.stats())
        return tallies

    def check_invariants(self) -> list:
        """End-of-run checks for the ``faults`` subsystem (hard state)."""
        return self.hard.check_invariants() if self.hard is not None else []
