"""MPI tag matching: posted-receive and unexpected-message queues.

The matching rules are the MPI standard's: a receive posted with
``(source, tag)`` — either of which may be a wildcard — matches the
*earliest* incoming message with compatible envelope, and messages between
one (sender, receiver) pair are non-overtaking.  Both implementations use
this module: MVAPICH runs it on the host CPU, the Elan-4 model runs it on
the NIC thread processor.  Where it runs is precisely the paper's
offload/overlap distinction; *what* it does is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, List, Optional, TypeVar

from ..errors import MpiError

#: Wildcards (values mirror MPI_ANY_SOURCE / MPI_ANY_TAG conventions).
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Envelope:
    """The matchable part of a message or receive posting."""

    source: int
    tag: int

    def __post_init__(self) -> None:
        if self.source < ANY_SOURCE:
            raise MpiError(f"bad source: {self.source}")
        if self.tag < ANY_TAG:
            raise MpiError(f"bad tag: {self.tag}")


def envelopes_match(posting: Envelope, incoming: Envelope) -> bool:
    """True when a posted receive's envelope accepts an incoming message.

    The *incoming* side is always concrete; wildcards are legal only on
    the posting side.
    """
    if incoming.source == ANY_SOURCE or incoming.tag == ANY_TAG:
        raise MpiError("incoming message cannot carry wildcards")
    if posting.source != ANY_SOURCE and posting.source != incoming.source:
        return False
    if posting.tag != ANY_TAG and posting.tag != incoming.tag:
        return False
    return True


T = TypeVar("T")


@dataclass
class MatchEntry(Generic[T]):
    """One queue element: an envelope plus caller payload."""

    envelope: Envelope
    item: T
    seq: int = field(default=0)


class MatchQueue(Generic[T]):
    """An ordered matching queue (posted receives *or* unexpected sends).

    Search cost is the caller's concern: :meth:`find_for_incoming` and
    :meth:`find_for_posting` report how many elements were inspected so
    the host/NIC models can charge per-element time — queue-traversal cost
    on a slow NIC processor is a known offload hazard the paper cites.
    """

    def __init__(self) -> None:
        self._entries: List[MatchEntry[T]] = []
        self._seq = 0
        #: Running statistics for queue-depth analysis.
        self.max_depth = 0
        self.total_searched = 0

    def append(self, envelope: Envelope, item: T) -> None:
        """Add to the tail (arrival/post order)."""
        self._seq += 1
        self._entries.append(MatchEntry(envelope, item, self._seq))
        if len(self._entries) > self.max_depth:
            self.max_depth = len(self._entries)

    def find_for_incoming(self, incoming: Envelope) -> "tuple[Optional[T], int]":
        """Match an incoming message against posted receives.

        Returns ``(item, searched)`` removing the matched entry, or
        ``(None, searched)`` if nothing matches.
        """
        for i, entry in enumerate(self._entries):
            if envelopes_match(entry.envelope, incoming):
                del self._entries[i]
                self.total_searched += i + 1
                return entry.item, i + 1
        self.total_searched += len(self._entries)
        return None, len(self._entries)

    def find_for_posting(self, posting: Envelope) -> "tuple[Optional[T], int]":
        """Match a newly-posted receive against unexpected messages.

        The *earliest* compatible unexpected message wins (non-overtaking).
        """
        for i, entry in enumerate(self._entries):
            if envelopes_match(posting, entry.envelope):
                del self._entries[i]
                self.total_searched += i + 1
                return entry.item, i + 1
        self.total_searched += len(self._entries)
        return None, len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def peek_all(self) -> List[MatchEntry[T]]:
        """Snapshot of entries (tests/diagnostics only)."""
        return list(self._entries)

    def items(self) -> List[T]:
        """The queued payloads in queue order (invariant checks)."""
        return [entry.item for entry in self._entries]


def validate_rank(rank: int, size: int, what: str = "rank") -> None:
    """Common rank-range check used across the MPI layer."""
    if not 0 <= rank < size:
        raise MpiError(f"{what} {rank} out of range for {size} processes")


def validate_tag(tag: int) -> None:
    """Tags must be non-negative on the sending side."""
    if tag < 0:
        raise MpiError(f"send tag must be non-negative, got {tag}")
