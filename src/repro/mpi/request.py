"""Non-blocking communication requests and completion status.

A :class:`Request` is the handle returned by ``isend``/``irecv``; the MPI
facade's ``wait``/``waitall`` consume them.  Completion semantics differ by
implementation — the Quadrics path completes requests asynchronously from
the NIC, the MVAPICH path only inside library calls — but the handle shape
is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import MpiError
from ..sim import Event
from ..telemetry.lifecycle import NULL_SPAN


@dataclass
class Status:
    """Completion information of a receive (MPI_Status equivalent)."""

    source: int = -1
    tag: int = -1
    size: int = -1


@dataclass
class Request:
    """One outstanding non-blocking operation."""

    kind: str  # "send" | "recv"
    peer: int
    tag: int
    size: int
    done: Event
    status: Status = field(default_factory=Status)
    #: Implementation-private protocol state.
    impl_state: Optional[object] = None
    #: Lifecycle span of this operation (null span when telemetry off).
    span: Any = NULL_SPAN

    @property
    def completed(self) -> bool:
        """True once the operation has finished."""
        return self.done.triggered

    def complete(self, source: int = -1, tag: int = -1, size: int = -1) -> None:
        """Mark done, filling in receive status fields."""
        if self.done.triggered:
            raise MpiError(f"{self.kind} request completed twice")
        self.status.source = source
        self.status.tag = tag
        self.status.size = size
        self.done.succeed(self.status)
