"""Communicators: ordered process groups with private tag spaces.

A :class:`Communicator` maps group-local ranks to world ranks and carries a
collective-operation counter per member so collective traffic gets unique
tags without cross-talk between overlapping communicators — the same role
MPI context ids play.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from ..errors import MpiError

#: Collective tags start here; application tags must stay below.
COLLECTIVE_TAG_BASE = 1 << 20
#: Distinct context ids are spaced this far apart in tag space.
_CONTEXT_STRIDE = 1 << 12


def _context_id(name: str, ranks: Sequence[int]) -> int:
    """Deterministic context id from the group identity.

    Communicator creation is collective: every member constructs its own
    :class:`Communicator` object for the same group.  Deriving the context
    id from ``(name, members)`` makes those per-rank instances agree on a
    tag space without any global coordination — the invariant is that two
    *different* communicators over the same members need different names.
    """
    h = hashlib.blake2b(digest_size=4)
    h.update(name.encode("utf-8"))
    for r in ranks:
        h.update(int(r).to_bytes(8, "little", signed=True))
    return int.from_bytes(h.digest(), "little")


class Communicator:
    """An ordered group of world ranks."""

    def __init__(self, world_ranks: Sequence[int], name: str = "comm") -> None:
        ranks = list(world_ranks)
        if not ranks:
            raise MpiError("empty communicator")
        if len(set(ranks)) != len(ranks):
            raise MpiError(f"duplicate ranks in communicator: {ranks}")
        self.world_ranks: List[int] = ranks
        self.name = name
        self._index: Dict[int, int] = {w: i for i, w in enumerate(ranks)}
        self.context_id = _context_id(name, ranks)
        #: Per-member collective sequence numbers (keyed by group rank).
        self._op_counters: Dict[int, int] = {i: 0 for i in range(len(ranks))}

    @property
    def size(self) -> int:
        """Number of processes in the group."""
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank (raises if not a member)."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise MpiError(
                f"world rank {world_rank} not in communicator {self.name!r}"
            )

    def world_rank(self, group_rank: int) -> int:
        """World rank of a group rank."""
        if not 0 <= group_rank < self.size:
            raise MpiError(
                f"group rank {group_rank} out of range in {self.name!r}"
            )
        return self.world_ranks[group_rank]

    def contains(self, world_rank: int) -> bool:
        """Membership test by world rank."""
        return world_rank in self._index

    def next_collective_tag(self, group_rank: int) -> int:
        """A tag for the next collective call by ``group_rank``.

        All members call collectives in the same order (an MPI requirement),
        so per-member counters stay in lockstep and every member computes
        the same tag for the same operation.
        """
        n = self._op_counters[group_rank]
        self._op_counters[group_rank] = n + 1
        return (
            COLLECTIVE_TAG_BASE
            + (self.context_id % _CONTEXT_STRIDE) * _CONTEXT_STRIDE
            + (n % _CONTEXT_STRIDE)
        )

    def split(self, color_of: Dict[int, int], name: str = "split") -> Dict[int, "Communicator"]:
        """Partition into sub-communicators by color (world-rank keyed).

        Returns ``{color: Communicator}``; rank order within each color
        follows world-rank order, as MPI_Comm_split with equal keys does.
        """
        by_color: Dict[int, List[int]] = {}
        for w in self.world_ranks:
            if w not in color_of:
                raise MpiError(f"split missing color for world rank {w}")
            by_color.setdefault(color_of[w], []).append(w)
        return {
            color: Communicator(sorted(members), name=f"{name}.{color}")
            for color, members in sorted(by_color.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Communicator {self.name} size={self.size}>"
