"""Per-rank execution context and the implementation interface.

:class:`RankContext` binds one MPI process to its CPU, node and NIC, and
carries the cache-pollution accumulator that converts host-side MPI work
into application compute slowdown (Section 3.3.4's offload argument).

:class:`MpiImpl` is the interface both implementations provide.  All
methods that advance simulated time are generators driven from the rank's
own process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

from ..errors import MpiError
from ..hardware import Node, PollutionSpec, XEON_POLLUTION
from ..hardware.node import Cpu
from ..sim import Event
from .request import Request

if TYPE_CHECKING:  # pragma: no cover
    from ..networks.base import Nic
    from ..sim import Simulator


class RankContext:
    """Everything one MPI process needs to touch the machine."""

    def __init__(
        self,
        sim: "Simulator",
        rank: int,
        size: int,
        node: Node,
        cpu: Cpu,
        nic: "Nic",
        pollution: Optional[PollutionSpec] = None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.size = size
        self.node = node
        self.cpu = cpu
        self.nic = nic
        self.pollution = pollution if pollution is not None else XEON_POLLUTION
        #: Bytes handled by host-side MPI code since the last compute
        #: region — drives the cache-pollution compute slowdown.  Only the
        #: MVAPICH path ever charges it.
        self.polluted_bytes = 0.0
        #: Implementation-private state (queues, protocol tables).
        self.impl_state: Any = None
        #: Co-resident contexts on the same node (set by the machine
        #: builder); pollution propagates to them.
        self.neighbors: List["RankContext"] = []
        # -- accounting ----------------------------------------------------
        self.sends = 0
        self.recvs = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def charge_pollution(self, nbytes: float) -> None:
        """Record host-side MPI data movement that dirties the cache.

        A fraction lands on co-resident ranks too: the dual-Xeon node
        shares its front-side bus and the copies evict lines node-wide.
        """
        if nbytes <= 0:
            return
        self.polluted_bytes += nbytes
        cross = nbytes * self.pollution.cross_rank_fraction
        for other in self.neighbors:
            other.polluted_bytes += cross

    def compute_slowdown(self) -> float:
        """Multiplier (>= 1) for the next compute region; drains pollution."""
        factor = 1.0 + self.pollution.slowdown(self.polluted_bytes)
        self.polluted_bytes = 0.0
        return factor


class MpiImpl:
    """Interface of one MPI implementation (MVAPICH or Quadrics MPI)."""

    #: Human-readable name for reports.
    name = "abstract"
    #: Whether outstanding operations progress without library calls.
    independent_progress = False
    #: Whether matching/protocol work is offloaded to the NIC.
    offload = False

    def init(self, ctx: RankContext) -> Generator[Event, Any, None]:
        """Per-rank MPI_Init work (connections, capabilities)."""
        raise NotImplementedError

    def isend(
        self, ctx: RankContext, dest: int, size: int, tag: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        """Start a non-blocking send; returns quickly with a request."""
        raise NotImplementedError

    def irecv(
        self, ctx: RankContext, source: int, tag: int, size: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        """Start a non-blocking receive; returns quickly with a request."""
        raise NotImplementedError

    def wait(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, None]:
        """Block until ``request`` completes, making progress as needed."""
        raise NotImplementedError

    def waitall(
        self, ctx: RankContext, requests: List[Request]
    ) -> Generator[Event, Any, None]:
        """Block until every request completes (default: wait in turn)."""
        for req in requests:
            yield from self.wait(ctx, req)

    def test(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, bool]:
        """One progress poke; returns completion state without blocking."""
        raise NotImplementedError

    def compute(
        self, ctx: RankContext, duration: float
    ) -> Generator[Event, Any, None]:
        """Application compute: occupies the CPU, makes NO MPI progress.

        Two interference mechanisms apply, both zero by construction on
        the offloaded (Quadrics) path:

        * cache pollution accumulated from host-side MPI work slows the
          whole region (drained once at its start);
        * while a co-resident rank spin-polls its MPI library, each
          compute slice pays :attr:`PollutionSpec.spin_pressure` — the
          region is sliced so the penalty tracks the neighbour's actual
          spinning windows.
        """
        if duration < 0:
            raise MpiError(f"negative compute time: {duration}")
        if duration == 0.0:
            return
        remaining = duration * ctx.compute_slowdown()
        slice_us = ctx.pollution.spin_slice_us
        while remaining > 0.0:
            chunk = min(remaining, slice_us)
            remaining -= chunk
            if ctx.node.spinning > 0:
                chunk *= 1.0 + ctx.pollution.spin_pressure
            yield from ctx.cpu.busy(chunk, kind="compute")

    def finalize_stats(self, ctx: RankContext) -> dict:
        """Per-rank implementation statistics for reports."""
        return {}
