"""Collective-communication algorithms over point-to-point messages."""

from . import algorithms

__all__ = ["algorithms"]
