"""Collective algorithms over point-to-point operations.

Both era MPI implementations built collectives from point-to-point
messages with the classic MPICH algorithm suite, so one shared set of
algorithms runs over either transport — any performance difference between
the networks flows from the p2p layer, as it did on the testbed.

All functions are generators taking the per-rank MPI facade
(:class:`repro.mpi.api.MpiRank`) and a :class:`Communicator`.  Message
sizes are bytes; reduction arithmetic is charged as compute time.
"""

from __future__ import annotations

from typing import Any, Generator, List, TYPE_CHECKING

from ...errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from ..api import MpiRank
    from ..communicator import Communicator

#: Reduction arithmetic cost: one double-precision op per 8 bytes on a
#: ~3 GHz Xeon, amortized: ~0.0006 us/byte.
REDUCE_US_PER_BYTE = 0.0006


def _log2_ceil(n: int) -> int:
    k = 0
    while (1 << k) < n:
        k += 1
    return k


def barrier(api: "MpiRank", comm: "Communicator") -> Generator[Any, Any, None]:
    """Dissemination barrier: ceil(log2 n) rounds of 0-byte exchanges."""
    n = comm.size
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    for k in range(_log2_ceil(n)):
        dist = 1 << k
        to = comm.world_rank((me + dist) % n)
        frm = comm.world_rank((me - dist) % n)
        rreq = yield from api.irecv(source=frm, tag=tag + 0, size=0)
        sreq = yield from api.isend(dest=to, size=0, tag=tag + 0)
        yield from api.wait(sreq)
        yield from api.wait(rreq)


def bcast(
    api: "MpiRank", comm: "Communicator", nbytes: int, root: int = 0
) -> Generator[Any, Any, None]:
    """Binomial-tree broadcast rooted at group rank ``root``."""
    n = comm.size
    _raise_size(nbytes)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    vrank = (me - root) % n  # virtual rank with root at 0
    mask = 1
    # Receive phase: wait for the parent.
    while mask < n:
        if vrank & mask:
            parent = comm.world_rank(((vrank & ~mask) + root) % n)
            yield from api.recv(source=parent, tag=tag, size=nbytes)
            break
        mask <<= 1
    # Send phase: forward to children below the break mask.
    mask >>= 1
    while mask > 0:
        if vrank + mask < n and not vrank & (mask - 1) and vrank & mask == 0:
            child = comm.world_rank(((vrank | mask) + root) % n)
            yield from api.send(dest=child, size=nbytes, tag=tag)
        mask >>= 1


def reduce(
    api: "MpiRank", comm: "Communicator", nbytes: int, root: int = 0
) -> Generator[Any, Any, None]:
    """Binomial-tree reduction to group rank ``root``."""
    n = comm.size
    _raise_size(nbytes)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    vrank = (me - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = comm.world_rank(((vrank & ~mask) + root) % n)
            yield from api.send(dest=parent, size=nbytes, tag=tag)
            break
        partner = vrank | mask
        if partner < n:
            child = comm.world_rank((partner + root) % n)
            yield from api.recv(source=child, tag=tag, size=nbytes)
            yield from api.compute(nbytes * REDUCE_US_PER_BYTE)
        mask <<= 1


def allreduce(
    api: "MpiRank", comm: "Communicator", nbytes: int
) -> Generator[Any, Any, None]:
    """Recursive-doubling allreduce (MPICH's small/medium algorithm).

    Non-power-of-two groups fold the remainder into the nearest power of
    two first, exactly as MPICH does.
    """
    n = comm.size
    _raise_size(nbytes)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    pof2 = 1 << (_log2_ceil(n + 1) - 1)
    if pof2 > n:
        pof2 >>= 1
    rem = n - pof2
    newrank = -1
    if me < 2 * rem:
        if me % 2 == 0:  # even remainder ranks hand off and sit out
            yield from api.send(dest=comm.world_rank(me + 1), size=nbytes, tag=tag)
        else:
            yield from api.recv(source=comm.world_rank(me - 1), tag=tag, size=nbytes)
            yield from api.compute(nbytes * REDUCE_US_PER_BYTE)
            newrank = me // 2
    else:
        newrank = me - rem
    if newrank >= 0:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            w = comm.world_rank(partner)
            rreq = yield from api.irecv(source=w, tag=tag, size=nbytes)
            sreq = yield from api.isend(dest=w, size=nbytes, tag=tag)
            yield from api.wait(sreq)
            yield from api.wait(rreq)
            yield from api.compute(nbytes * REDUCE_US_PER_BYTE)
            mask <<= 1
    # Fold the result back out to the sidelined even ranks.
    if me < 2 * rem:
        if me % 2:
            yield from api.send(dest=comm.world_rank(me - 1), size=nbytes, tag=tag)
        else:
            yield from api.recv(source=comm.world_rank(me + 1), tag=tag, size=nbytes)


def allgather(
    api: "MpiRank", comm: "Communicator", nbytes_each: int
) -> Generator[Any, Any, None]:
    """Ring allgather: n-1 steps, each forwarding one block."""
    n = comm.size
    _raise_size(nbytes_each)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    right = comm.world_rank((me + 1) % n)
    left = comm.world_rank((me - 1) % n)
    for _ in range(n - 1):
        rreq = yield from api.irecv(source=left, tag=tag, size=nbytes_each)
        sreq = yield from api.isend(dest=right, size=nbytes_each, tag=tag)
        yield from api.wait(sreq)
        yield from api.wait(rreq)


def alltoall(
    api: "MpiRank", comm: "Communicator", nbytes_each: int
) -> Generator[Any, Any, None]:
    """Pairwise-exchange alltoall (n-1 rounds, partner = rank xor/shift)."""
    n = comm.size
    _raise_size(nbytes_each)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    is_pof2 = (n & (n - 1)) == 0
    for step in range(1, n):
        partner = me ^ step if is_pof2 else (me + step) % n
        if not is_pof2:
            send_to = comm.world_rank((me + step) % n)
            recv_from = comm.world_rank((me - step) % n)
        else:
            send_to = recv_from = comm.world_rank(partner)
        rreq = yield from api.irecv(source=recv_from, tag=tag, size=nbytes_each)
        sreq = yield from api.isend(dest=send_to, size=nbytes_each, tag=tag)
        yield from api.wait(sreq)
        yield from api.wait(rreq)


def gather(
    api: "MpiRank", comm: "Communicator", nbytes_each: int, root: int = 0
) -> Generator[Any, Any, None]:
    """Binomial-tree gather: leaves send up, inner nodes forward subtrees.

    A process ``mask`` levels up the tree forwards ``2^level`` blocks, so
    wire volume matches MPICH's binomial gather exactly.
    """
    n = comm.size
    _raise_size(nbytes_each)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    vrank = (me - root) % n
    mask = 1
    blocks = 1  # blocks already held (own contribution)
    while mask < n:
        if vrank & mask:
            parent = comm.world_rank(((vrank & ~mask) + root) % n)
            yield from api.send(dest=parent, size=blocks * nbytes_each, tag=tag)
            break
        partner = vrank | mask
        if partner < n:
            child = comm.world_rank((partner + root) % n)
            incoming = min(mask, n - partner)
            yield from api.recv(
                source=child, tag=tag, size=incoming * nbytes_each
            )
            blocks += incoming
        mask <<= 1


def scatter(
    api: "MpiRank", comm: "Communicator", nbytes_each: int, root: int = 0
) -> Generator[Any, Any, None]:
    """Binomial-tree scatter (gather's mirror image)."""
    n = comm.size
    _raise_size(nbytes_each)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    vrank = (me - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = comm.world_rank(((vrank & ~mask) + root) % n)
            incoming = min(mask, n - vrank)
            yield from api.recv(
                source=parent, tag=tag, size=incoming * nbytes_each
            )
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < n:
            child = comm.world_rank(((vrank | mask) + root) % n)
            outgoing = min(mask, n - (vrank + mask))
            yield from api.send(
                dest=child, size=outgoing * nbytes_each, tag=tag
            )
        mask >>= 1


def alltoallv(
    api: "MpiRank",
    comm: "Communicator",
    send_sizes: "List[int]",
    recv_sizes: "List[int]",
) -> Generator[Any, Any, None]:
    """Pairwise alltoallv with per-peer byte counts.

    ``send_sizes[i]``/``recv_sizes[i]`` are the bytes this process sends
    to / receives from group rank ``i``; zero-size pairs are skipped (as
    MPICH does).  All members must pass mutually consistent counts.
    """
    n = comm.size
    if len(send_sizes) != n or len(recv_sizes) != n:
        raise MpiError(
            f"alltoallv needs {n} sizes, got "
            f"{len(send_sizes)}/{len(recv_sizes)}"
        )
    for s in list(send_sizes) + list(recv_sizes):
        _raise_size(s)
    if n == 1:
        return
    me = comm.rank_of(api.rank)
    tag = comm.next_collective_tag(me)
    for step in range(1, n):
        to = (me + step) % n
        frm = (me - step) % n
        reqs = []
        if recv_sizes[frm] > 0:
            r = yield from api.irecv(
                source=comm.world_rank(frm), tag=tag, size=recv_sizes[frm]
            )
            reqs.append(r)
        if send_sizes[to] > 0:
            s = yield from api.isend(
                dest=comm.world_rank(to), size=send_sizes[to], tag=tag
            )
            reqs.append(s)
        if reqs:
            yield from api.waitall(reqs)


def _raise_size(nbytes: int) -> bool:
    if nbytes < 0:
        raise MpiError(f"negative collective size: {nbytes}")
    return False
