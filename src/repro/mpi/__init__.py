"""The simulated MPI layer: facade, matching, communicators, machines."""

from .api import MpiRank
from .communicator import Communicator
from .context import MpiImpl, RankContext
from .machine import Machine, NETWORK_LABELS, NETWORKS, RunResult, build_machine
from .matching import ANY_SOURCE, ANY_TAG, Envelope, MatchQueue
from .request import Request, Status

__all__ = [
    "MpiRank",
    "Communicator",
    "MpiImpl",
    "RankContext",
    "Machine",
    "RunResult",
    "build_machine",
    "NETWORKS",
    "NETWORK_LABELS",
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "MatchQueue",
    "Request",
    "Status",
]
