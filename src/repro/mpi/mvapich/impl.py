"""MVAPICH-style MPI over the InfiniBand HCA model.

Faithful to the 0.9.2-era design the paper measured:

* **Eager path** (messages <= 1 KB): the host copies the payload into a
  pre-registered per-peer RDMA ring, the HCA RDMA-writes it into the
  peer's ring, and the *receiving host* discovers it by polling.  Two host
  copies per message, both polluting the cache.
* **Rendezvous path**: RTS -> (receiver registers + CTS) -> RDMA data ->
  completion.  Every protocol step on either host runs **only inside MPI
  library calls** — there is no independent progress (Section 3.3.3).  An
  RTS arriving while the target rank is computing waits in the inbox.
* **Host matching**: tag matching runs on the host CPU, charged per queue
  element (Section 3.3.4's "no offload").
* **Registration**: rendezvous buffers go through the pin-down cache of
  :mod:`repro.networks.ib.memreg`, including its 4 MB thrash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Tuple

from ...errors import MpiError, TruncationError
from ...networks.base import NetRecord
from ...networks.ib import Hca
from ...networks.params import IBParams
from ...sim import Event, Store
from ...telemetry.series import NULL_CHANNEL
from ..context import MpiImpl, RankContext
from ..matching import (
    ANY_SOURCE,
    Envelope,
    MatchQueue,
    validate_rank,
    validate_tag,
)
from ..request import Request

if TYPE_CHECKING:  # pragma: no cover
    from ...sim import Simulator


class _SendState:
    """Sender-side record of a rendezvous in flight."""

    __slots__ = ("request", "dest", "size", "buf")

    def __init__(self, request: Request, dest: int, size: int, buf: Any) -> None:
        self.request = request
        self.dest = dest
        self.size = size
        self.buf = buf


class _MvState:
    """Per-rank MVAPICH protocol state."""

    def __init__(self, inbox: Store, ring_slots: int) -> None:
        self.inbox = inbox
        self.posted: MatchQueue[Request] = MatchQueue()
        self.unexpected: MatchQueue[NetRecord] = MatchQueue()
        self.pending_sends: Dict[int, _SendState] = {}
        self.pending_recvs: Dict[int, Request] = {}
        self.send_seq = 0
        #: Eager-ring flow control: remaining slots in each peer's ring
        #: dedicated to *this* sender.  A slot is consumed per eager send
        #: and returned once the receiving host copies the message out.
        self.ring_slots = ring_slots
        self.credits: Dict[int, int] = {}
        self.credit_waiters: Dict[int, Event] = {}
        #: Eager slots currently consumed across all destinations, and
        #: its series channel (replaced with the live one when sampling
        #: is enabled; see ``register_rank``).
        self.credits_outstanding = 0
        self.credit_chan = NULL_CHANNEL
        # -- statistics ----------------------------------------------------
        self.eager_sends = 0
        self.rndv_sends = 0
        self.host_copies_bytes = 0
        self.credit_stalls = 0

    def credits_to(self, dest: int) -> int:
        return self.credits.setdefault(dest, self.ring_slots)


class MvapichImpl(MpiImpl):
    """The InfiniBand MPI implementation (one instance per machine).

    ``progress_thread=True`` enables the ablation the paper's future-work
    section asks about: a helper thread that services the inbox even while
    the application computes, buying independent progress at the price of
    per-event CPU interference with the compute (the thread shares the
    rank's processor).  The 2004 stack did not have this; the option
    exists to isolate how much of the Quadrics advantage independent
    progress alone explains.
    """

    name = "MVAPICH 0.9.2 (model)"
    independent_progress = False
    offload = False

    #: Extra host cost per record when handled by the progress thread
    #: (wakeup + lock traffic on top of the normal handling cost).
    PROGRESS_THREAD_WAKEUP = 1.5

    def __init__(
        self,
        sim: "Simulator",
        params: IBParams,
        progress_thread: bool = False,
    ) -> None:
        self.sim = sim
        self.params = params
        self.progress_thread = progress_thread
        if progress_thread:
            self.independent_progress = True
        #: rank -> (context, HCA); filled by the machine builder.
        self._ranks: Dict[int, Tuple[RankContext, Hca]] = {}
        # Machine-wide protocol counters (per-rank splits remain in
        # finalize_stats); no-ops when telemetry is disabled.
        m = sim.metrics
        self._c_eager = m.counter("mvapich.eager_sends")
        self._c_rndv = m.counter("mvapich.rndv_sends")
        self._c_rts = m.counter("mvapich.rts_sent")
        self._c_cts = m.counter("mvapich.cts_sent")
        self._c_fin = m.counter("mvapich.fin_sent")
        self._c_match = m.counter("mvapich.match_attempts")
        self._c_match_searched = m.counter("mvapich.match_elements_searched")
        self._c_credit_stalls = m.counter("mvapich.credit_stalls")
        self._c_unexpected = m.counter("mvapich.unexpected_msgs")

    # -- wiring -------------------------------------------------------------

    def register_rank(self, ctx: RankContext, hca: Hca) -> None:
        """Bind a rank to its HCA; creates inbox and protocol state."""
        inbox = hca.attach_rank(ctx.rank)
        state = _MvState(inbox, self.params.rdma_ring_slots)
        state.credit_chan = self.sim.telemetry.series.channel(
            f"mvapich.r{ctx.rank}.credits_outstanding"
        )
        ctx.impl_state = state
        self._ranks[ctx.rank] = (ctx, hca)
        if self.progress_thread:
            self.sim.spawn(
                self._progress_thread_loop(ctx),
                name=f"ib.prog{ctx.rank}",
                daemon=True,
            )

    def _progress_thread_loop(self, ctx: RankContext):
        """Ablation: service the inbox continuously (see class docstring).

        With the thread enabled it is the *sole* inbox consumer; blocking
        waits sleep on the request event instead of polling.  Each record
        pays a wakeup cost on the rank's CPU on top of normal handling —
        progress no longer requires library calls, but it still steals
        host cycles, unlike NIC offload.
        """
        state: _MvState = ctx.impl_state
        while True:
            record = yield state.inbox.get()
            yield from ctx.cpu.busy(self.PROGRESS_THREAD_WAKEUP, kind="mpi")
            yield from self._handle(ctx, record)

    def _peer_hca(self, rank: int) -> Hca:
        try:
            return self._ranks[rank][1]
        except KeyError:
            raise MpiError(f"rank {rank} not registered with MVAPICH model")

    def init(self, ctx: RankContext) -> Generator[Event, Any, None]:
        """MPI_Init: establish a queue pair to every peer (0.9.2 behaviour)."""
        hca = self._ranks[ctx.rank][1]
        for peer in range(ctx.size):
            if peer != ctx.rank:
                yield from hca.connect(ctx.cpu, ctx.rank, peer)

    # -- send ------------------------------------------------------------------

    def isend(
        self, ctx: RankContext, dest: int, size: int, tag: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        validate_rank(dest, ctx.size, "destination")
        validate_tag(tag)
        if size < 0:
            raise MpiError(f"negative message size: {size}")
        state: _MvState = ctx.impl_state
        hca = self._ranks[ctx.rank][1]
        eager = size <= self.params.eager_threshold
        span = self.sim.lifecycle.start(
            "send", ctx.rank, dest, tag, size,
            "eager" if eager else "rndv", self.sim.now,
        )
        req = Request(
            kind="send", peer=dest, tag=tag, size=size,
            done=Event(self.sim), span=span,
        )
        ctx.sends += 1
        ctx.bytes_sent += size
        self.sim.trace.log(
            self.sim.now,
            "ib.send",
            f"r{ctx.rank}->r{dest} tag={tag} size={size} "
            f"{'eager' if eager else 'rndv'}",
        )
        if eager:
            state.eager_sends += 1
            self._c_eager.inc()
            # Flow control: an eager send needs a free slot in the
            # destination's per-sender ring.  When the ring is full (the
            # receiver has not been in the library to drain it), the
            # sender stalls *inside* isend, progressing its own inbox.
            start = self.sim.now
            yield from self._acquire_credit(ctx, dest)
            span.phase("credit_wait", start, self.sim.now)
            # Copy into the pre-registered ring, then RDMA it over.
            start = self.sim.now
            yield from ctx.node.host_copy(size)
            span.phase("eager_copy", start, self.sim.now)
            state.host_copies_bytes += size
            ctx.charge_pollution(size)
            record = NetRecord(
                kind="eager", src_rank=ctx.rank, dst_rank=dest, size=size,
                tag=tag, span=span,
            )
            wire_done = yield from hca.rdma_write(
                ctx.cpu, ctx.rank, self._peer_hca(dest), record
            )
            # Buffer reusable immediately after the copy: complete locally.
            # The span stays open until the wire delivers (its wire:eager
            # phase lands then), so it is finished from a callback.
            req.complete(source=ctx.rank, tag=tag, size=size)
            if wire_done.triggered:
                span.finish(self.sim.now)
            else:
                wire_done.add_callback(
                    lambda _ev: span.finish(self.sim.now)
                )
            return req
        # Rendezvous.
        state.rndv_sends += 1
        self._c_rndv.inc()
        self._c_rts.inc()
        state.send_seq += 1
        send_id = (ctx.rank << 24) + state.send_seq
        key = buf if buf is not None else ("send", ctx.rank, dest)
        yield from hca.reg_cache(ctx.rank).ensure(ctx.cpu, key, size, span)
        state.pending_sends[send_id] = _SendState(req, dest, size, buf)
        rts = NetRecord(
            kind="rts",
            src_rank=ctx.rank,
            dst_rank=dest,
            size=self.params.control_bytes,
            tag=tag,
            meta=(send_id, size),
            span=span,
        )
        yield from hca.rdma_write(ctx.cpu, ctx.rank, self._peer_hca(dest), rts)
        return req

    # -- receive -----------------------------------------------------------------

    def irecv(
        self, ctx: RankContext, source: int, tag: int, size: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        if source != ANY_SOURCE:
            validate_rank(source, ctx.size, "source")
        state: _MvState = ctx.impl_state
        span = self.sim.lifecycle.start(
            "recv", ctx.rank, source, tag, size, "recv", self.sim.now
        )
        req = Request(
            kind="recv", peer=source, tag=tag, size=size,
            done=Event(self.sim), span=span,
        )
        req.impl_state = buf
        ctx.recvs += 1
        posting = Envelope(source, tag)
        # Match-or-post must be atomic (no yields in between): a record
        # being handled concurrently by the progress thread must either
        # see this posting or have parked in the unexpected queue.
        record, searched = state.unexpected.find_for_posting(posting)
        if record is None:
            state.posted.append(posting, req)
            yield from self._charge_match(ctx, searched)
            return req
        start = self.sim.now
        yield from self._charge_match(ctx, searched)
        span.phase("host_match", start, self.sim.now)
        if record.kind == "eager":
            yield from self._deliver_eager(ctx, record, req)
        elif record.kind == "rts":
            yield from self._answer_rts(ctx, record, req)
        else:  # pragma: no cover - defensive
            raise MpiError(f"unexpected queue held {record.kind!r}")
        return req

    # -- progress engine -----------------------------------------------------------

    def wait(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, None]:
        """Poll/handle inbox records until ``request`` completes.

        This loop *is* MVAPICH's progress engine: every protocol step of
        every outstanding operation of this rank happens here (or inside
        isend/irecv/test).  While a rank computes, nothing moves.

        With the progress-thread ablation enabled, the thread owns the
        inbox and the wait simply sleeps on the completion event.
        """
        state: _MvState = ctx.impl_state
        if self.progress_thread:
            yield request.done
            return
        while not request.completed:
            get_ev = state.inbox.get()
            if get_ev.triggered:
                record = get_ev.value
                yield from self._handle(ctx, record)
                continue
            # Nothing to do: MVAPICH blocks by *spin-polling* the CQ,
            # loading the shared front-side bus; co-resident compute pays.
            ctx.node.spinning += 1
            try:
                yield self.sim.any_of([request.done, get_ev])
            finally:
                ctx.node.spinning -= 1
            if get_ev.triggered:
                yield from self._handle(ctx, get_ev.value)
            else:
                state.inbox.cancel_get(get_ev)
        if request.done._exception is not None:
            yield request.done  # re-raise the protocol failure

    def test(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, bool]:
        state: _MvState = ctx.impl_state
        if self.progress_thread:
            yield from ctx.cpu.busy(self.params.cq_poll, kind="mpi")
            return request.completed
        record = state.inbox.try_get()
        if record is not None:
            yield from self._handle(ctx, record)
        else:
            yield from ctx.cpu.busy(self.params.cq_poll, kind="mpi")
        return request.completed

    #: Cache footprint of handling one protocol record on the host
    #: (descriptor, queue nodes, CQE cachelines) — charged as pollution.
    PROTOCOL_EVENT_FOOTPRINT = 8192

    def _handle(
        self, ctx: RankContext, record: NetRecord
    ) -> Generator[Event, Any, None]:
        """Process one delivered record on the host CPU."""
        state: _MvState = ctx.impl_state
        self.sim.trace.log(
            self.sim.now,
            "ib.handle",
            f"r{ctx.rank} {record.kind} from r{record.src_rank} "
            f"tag={record.tag} size={record.size}",
        )
        yield from ctx.cpu.busy(self.params.cq_poll, kind="mpi")
        ctx.charge_pollution(self.PROTOCOL_EVENT_FOOTPRINT)
        if record.kind == "eager":
            incoming = Envelope(record.src_rank, record.tag)
            # Atomic match-or-park (see irecv); costs charged after.
            req, searched = state.posted.find_for_incoming(incoming)
            if req is None:
                state.unexpected.append(incoming, record)
                self._c_unexpected.inc()
                yield from self._charge_match(ctx, searched)
                # Copy out of the ring into the unexpected buffer.
                yield from ctx.node.host_copy(record.size)
                state.host_copies_bytes += record.size
                ctx.charge_pollution(record.size)
            else:
                start = self.sim.now
                yield from self._charge_match(ctx, searched)
                req.span.phase("host_match", start, self.sim.now)
                yield from self._deliver_eager(ctx, record, req)
            # Either way the ring slot is free again: return the credit.
            self._return_credit(ctx.rank, record.src_rank)
        elif record.kind == "rts":
            incoming = Envelope(record.src_rank, record.tag)
            req, searched = state.posted.find_for_incoming(incoming)
            if req is None:
                state.unexpected.append(incoming, record)
                self._c_unexpected.inc()
                yield from self._charge_match(ctx, searched)
            else:
                start = self.sim.now
                yield from self._charge_match(ctx, searched)
                req.span.phase("host_match", start, self.sim.now)
                yield from self._answer_rts(ctx, record, req)
        elif record.kind == "cts":
            yield from self._start_data(ctx, record)
        elif record.kind == "rdata":
            send_id = record.meta
            req = state.pending_recvs.pop(send_id, None)
            if req is None:
                raise MpiError(f"rdata for unknown rendezvous {send_id}")
            ctx.bytes_received += record.size
            req.span.edge(record.span.last_end, record.span, "host_poll")
            req.complete(source=record.src_rank, tag=record.tag, size=record.size)
            req.span.finish(self.sim.now)
        elif record.kind == "rread":
            # Our own RDMA read completed: finish the receive and tell
            # the sender its buffer is free.
            send_id = record.meta
            req = state.pending_recvs.pop(send_id, None)
            if req is None:
                raise MpiError(f"read completion for unknown rendezvous {send_id}")
            ctx.bytes_received += record.size
            req.complete(source=record.src_rank, tag=record.tag, size=record.size)
            req.span.finish(self.sim.now)
            hca = self._ranks[ctx.rank][1]
            fin = NetRecord(
                kind="fin",
                src_rank=ctx.rank,
                dst_rank=record.src_rank,
                size=self.params.control_bytes,
                tag=record.tag,
                meta=send_id,
                span=req.span,
            )
            self._c_fin.inc()
            yield from hca.rdma_write(
                ctx.cpu, ctx.rank, self._peer_hca(record.src_rank), fin
            )
        elif record.kind == "fin":
            send_id = record.meta
            st = state.pending_sends.pop(send_id, None)
            if st is None:
                raise MpiError(f"FIN for unknown send {send_id}")
            st.request.span.edge(record.span.last_end, record.span, "host_poll")
            st.request.complete(
                source=ctx.rank, tag=st.request.tag, size=st.size
            )
            st.request.span.finish(self.sim.now)
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown record kind {record.kind!r}")

    # -- flow control ------------------------------------------------------------------

    def _acquire_credit(
        self, ctx: RankContext, dest: int
    ) -> Generator[Event, Any, None]:
        """Take one eager-ring slot toward ``dest``, stalling if empty.

        A stalled sender keeps servicing its own inbox (it is inside the
        library), so credit waits cannot deadlock against each other.
        """
        state: _MvState = ctx.impl_state
        while state.credits_to(dest) <= 0:
            state.credit_stalls += 1
            self._c_credit_stalls.inc()
            waiter = state.credit_waiters.get(dest)
            if waiter is None or waiter.processed:
                waiter = Event(self.sim)
                state.credit_waiters[dest] = waiter
            if self.progress_thread:
                yield waiter
                continue
            get_ev = state.inbox.get()
            if get_ev.triggered:
                yield from self._handle(ctx, get_ev.value)
            else:
                yield self.sim.any_of([waiter, get_ev])
                if get_ev.triggered:
                    yield from self._handle(ctx, get_ev.value)
                else:
                    state.inbox.cancel_get(get_ev)
        state.credits[dest] -= 1
        state.credits_outstanding += 1
        state.credit_chan.record(self.sim.now, state.credits_outstanding)

    def _return_credit(self, receiver_rank: int, sender_rank: int) -> None:
        """Free the ring slot ``sender_rank`` used at ``receiver_rank``.

        The credit word travels back RDMA-written (piggybacked in the real
        stack); its wire cost is negligible and modelled as zero, but its
        *timing* is exact: it returns only when the receiving host copies
        the message out of the ring.
        """
        sender_ctx, _ = self._ranks[sender_rank]
        state: _MvState = sender_ctx.impl_state
        state.credits[receiver_rank] = state.credits_to(receiver_rank) + 1
        state.credits_outstanding -= 1
        state.credit_chan.record(self.sim.now, state.credits_outstanding)
        waiter = state.credit_waiters.get(receiver_rank)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)

    # -- protocol helpers --------------------------------------------------------------

    def _charge_match(
        self, ctx: RankContext, searched: int
    ) -> Generator[Event, Any, None]:
        self._c_match.inc()
        self._c_match_searched.inc(searched)
        cost = (
            self.params.host_match_base
            + self.params.host_match_per_element * searched
        )
        yield from ctx.cpu.busy(cost, kind="mpi")

    def _deliver_eager(
        self, ctx: RankContext, record: NetRecord, req: Request
    ) -> Generator[Event, Any, None]:
        state: _MvState = ctx.impl_state
        span = req.span
        span.relabel("eager")
        # Host matching only: the HCA never matched anything on arrival.
        span.note("matched_on_arrival", 0)
        span.edge(record.span.last_end, record.span, "host_match")
        if record.size > req.size:
            span.note("error", "truncation")
            span.finish(self.sim.now)
            req.done.fail(
                TruncationError(
                    f"eager message of {record.size} B truncates receive of "
                    f"{req.size} B"
                )
            )
            return
        start = self.sim.now
        yield from ctx.node.host_copy(record.size)
        span.phase("eager_copy", start, self.sim.now)
        state.host_copies_bytes += record.size
        ctx.charge_pollution(record.size)
        ctx.bytes_received += record.size
        req.complete(source=record.src_rank, tag=record.tag, size=record.size)
        span.finish(self.sim.now)

    def _answer_rts(
        self, ctx: RankContext, rts: NetRecord, req: Request
    ) -> Generator[Event, Any, None]:
        state: _MvState = ctx.impl_state
        send_id, data_size = rts.meta
        span = req.span
        span.relabel("rndv")
        span.note("matched_on_arrival", 0)
        span.edge(rts.span.last_end, rts.span, "host_match")
        if data_size > req.size:
            span.note("error", "truncation")
            span.finish(self.sim.now)
            req.done.fail(
                TruncationError(
                    f"rendezvous of {data_size} B truncates receive of "
                    f"{req.size} B"
                )
            )
            return
        hca = self._ranks[ctx.rank][1]
        key = req.impl_state if req.impl_state is not None else (
            "recv",
            ctx.rank,
            rts.src_rank,
        )
        yield from hca.reg_cache(ctx.rank).ensure(ctx.cpu, key, data_size, span)
        state.pending_recvs[send_id] = req
        if self.params.rndv_protocol == "read":
            # RTS carried the source address: pull the data directly.
            # The sender's host is not involved again until the FIN.
            data = NetRecord(
                kind="rread",
                src_rank=rts.src_rank,
                dst_rank=ctx.rank,
                size=data_size,
                tag=rts.tag,
                meta=send_id,
                span=span,
            )
            yield from hca.rdma_read(
                ctx.cpu, ctx.rank, self._peer_hca(rts.src_rank), data
            )
            return
        cts = NetRecord(
            kind="cts",
            src_rank=ctx.rank,
            dst_rank=rts.src_rank,
            size=self.params.control_bytes,
            tag=rts.tag,
            meta=send_id,
            span=span,
        )
        self._c_cts.inc()
        yield from hca.rdma_write(
            ctx.cpu, ctx.rank, self._peer_hca(rts.src_rank), cts
        )

    def _start_data(
        self, ctx: RankContext, cts: NetRecord
    ) -> Generator[Event, Any, None]:
        state: _MvState = ctx.impl_state
        send_id = cts.meta
        st = state.pending_sends.pop(send_id, None)
        if st is None:
            raise MpiError(f"CTS for unknown send {send_id}")
        hca = self._ranks[ctx.rank][1]
        st.request.span.edge(cts.span.last_end, cts.span, "host_poll")
        data = NetRecord(
            kind="rdata",
            src_rank=ctx.rank,
            dst_rank=st.dest,
            size=st.size,
            tag=st.request.tag,
            meta=send_id,
            span=st.request.span,
        )
        done = yield from hca.rdma_write(
            ctx.cpu, ctx.rank, self._peer_hca(st.dest), data
        )
        # Local completion frees the send buffer; model the CQE as
        # observed at data completion (the sender is necessarily inside
        # the library whenever it can notice).
        self.sim.spawn(
            _complete_on(self.sim, done, st.request, ctx.rank, st.request.tag, st.size),
            name=f"ib.sdone{ctx.rank}",
        )

    # -- end-of-run invariants -----------------------------------------------------------

    def check_invariants(self) -> list:
        """Conservation checks on a quiesced run (plain dicts; see
        :func:`repro.analysis.invariants.check_invariants`).

        Eager-ring credits are the conserved quantity: every slot taken
        must have been returned, so each sender's per-destination count
        is back at ``ring_slots`` and no slots are outstanding.
        """
        problems = []
        for rank in sorted(self._ranks):
            ctx, _ = self._ranks[rank]
            state: _MvState = ctx.impl_state
            for dest in sorted(state.credits):
                if state.credits[dest] != state.ring_slots:
                    problems.append(
                        {
                            "name": "credits_balanced",
                            "message": (
                                f"rank {rank} holds {state.credits[dest]} "
                                f"credit(s) toward rank {dest}, expected "
                                f"{state.ring_slots}"
                            ),
                            "details": {
                                "rank": rank,
                                "dest": dest,
                                "credits": state.credits[dest],
                                "ring_slots": state.ring_slots,
                            },
                        }
                    )
            if state.credits_outstanding != 0:
                problems.append(
                    {
                        "name": "credits_outstanding",
                        "message": (
                            f"rank {rank} still counts "
                            f"{state.credits_outstanding} eager slot(s) "
                            "outstanding at end of run"
                        ),
                        "details": {
                            "rank": rank,
                            "outstanding": state.credits_outstanding,
                        },
                    }
                )
            for label, pending in (
                ("pending_sends", state.pending_sends),
                ("pending_recvs", state.pending_recvs),
            ):
                if pending:
                    problems.append(
                        {
                            "name": f"{label}_drained",
                            "message": (
                                f"rank {rank} has {len(pending)} "
                                f"{label.replace('_', ' ')} unresolved "
                                "at end of run"
                            ),
                            "details": {
                                "rank": rank,
                                "ids": sorted(pending),
                            },
                        }
                    )
            for label, queue in (
                ("posted", state.posted),
                ("unexpected", state.unexpected),
            ):
                if len(queue):
                    problems.append(
                        {
                            "name": f"{label}_drained",
                            "message": (
                                f"rank {rank} still has {len(queue)} "
                                f"{label} entr(ies) queued at end of run"
                            ),
                            "details": {"rank": rank, "depth": len(queue)},
                        }
                    )
        return problems

    # -- reporting ----------------------------------------------------------------------

    def finalize_stats(self, ctx: RankContext) -> dict:
        state: _MvState = ctx.impl_state
        hca = self._ranks[ctx.rank][1]
        cache = hca.reg_cache(ctx.rank)
        return {
            "eager_sends": state.eager_sends,
            "rndv_sends": state.rndv_sends,
            "host_copied_bytes": state.host_copies_bytes,
            "reg_hits": cache.hits,
            "reg_misses": cache.misses,
            "reg_evictions": cache.evictions,
            "posted_max_depth": state.posted.max_depth,
            "unexpected_max_depth": state.unexpected.max_depth,
            "credit_stalls": state.credit_stalls,
        }


def _complete_on(
    sim: "Simulator",
    done: Event,
    request: Request,
    source: int,
    tag: int,
    size: int,
) -> Generator[Event, Any, None]:
    yield done
    request.complete(source=source, tag=tag, size=size)
    request.span.finish(sim.now)
