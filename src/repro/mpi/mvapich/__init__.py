"""MVAPICH-style MPI implementation over the InfiniBand HCA model."""

from .impl import MvapichImpl

__all__ = ["MvapichImpl"]
