"""Quadrics MPI implementation over the Tports/Elan-4 model."""

from .impl import QMpiImpl

__all__ = ["QMpiImpl"]
