"""Quadrics MPI over the Tports/Elan-4 model.

Thin by design — which is the point the paper makes about interface match:
Tports already provides tagged, ordered, two-sided message passing with
matching, buffering and progress on the NIC, so MPI_Send maps to a Tports
transmit and MPI_Recv to a Tports receive posting.  The host's only work
is issuing commands and waiting on completion events; requests complete
asynchronously while the host computes (independent progress), and no
host-side copies pollute the cache.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Tuple

from ...errors import MpiError
from ...networks.elan import ElanNic
from ...networks.params import ElanParams
from ...sim import Event
from ..communicator import Communicator
from ..context import MpiImpl, RankContext
from ..matching import ANY_SOURCE, validate_rank, validate_tag
from ..request import Request

if TYPE_CHECKING:  # pragma: no cover
    from ...sim import Simulator


def _succeed_after(sim: "Simulator", delay: float, event: Event):
    """Trigger ``event`` after ``delay`` microseconds."""
    yield sim.timeout(delay)
    event.succeed(sim.now)


class _HwBarrier:
    """One in-flight hardware barrier: arrivals plus a completion event."""

    __slots__ = ("expected", "arrived", "done")

    def __init__(self, sim: "Simulator", expected: int) -> None:
        self.expected = expected
        self.arrived = 0
        self.done = Event(sim)


class _QState:
    """Per-rank statistics (the protocol state lives on the NIC)."""

    def __init__(self) -> None:
        self.tx_count = 0
        self.rx_count = 0


class QMpiImpl(MpiImpl):
    """The Quadrics MPI implementation (one instance per machine)."""

    name = "Quadrics MPI / Tports (model)"
    independent_progress = True
    offload = True

    def __init__(self, sim: "Simulator", params: ElanParams) -> None:
        self.sim = sim
        self.params = params
        self._ranks: Dict[int, Tuple[RankContext, ElanNic]] = {}
        # Machine-wide protocol counters; no-ops when telemetry is disabled.
        m = sim.metrics
        self._c_tx = m.counter("qmpi.tx")
        self._c_rx = m.counter("qmpi.rx")
        self._c_hw_barriers = m.counter("qmpi.hw_barriers")
        self._c_hw_bcasts = m.counter("qmpi.hw_bcasts")
        #: Hardware-collective bookkeeping (see :meth:`hw_barrier`).
        self._hw_barriers: Dict[tuple, _HwBarrier] = {}
        self._hw_seqs: Dict[tuple, Dict[int, int]] = {}
        self._hw_pending_roots: Dict[tuple, tuple] = {}
        #: Monotone id per launched hardware broadcast (tiebreak keys
        #: for its fan-out transfers).
        self._hw_op_seq = 0

    # -- wiring ------------------------------------------------------------

    def register_rank(self, ctx: RankContext, nic: ElanNic) -> None:
        """Bind a rank to its Elan adapter; creates the Tports context."""
        nic.attach_rank(ctx.rank)
        ctx.impl_state = _QState()
        self._ranks[ctx.rank] = (ctx, nic)

    def _peer_nic(self, rank: int) -> ElanNic:
        try:
            return self._ranks[rank][1]
        except KeyError:
            raise MpiError(f"rank {rank} not registered with Quadrics model")

    def init(self, ctx: RankContext) -> Generator[Event, Any, None]:
        """MPI_Init: allocate the job capability — once, not per peer.

        Connectionless: the cost does not scale with the number of
        processes (contrast :meth:`MvapichImpl.init`).
        """
        yield from ctx.cpu.busy(self.params.capability_setup, kind="mpi")

    # -- point to point -------------------------------------------------------

    def isend(
        self, ctx: RankContext, dest: int, size: int, tag: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        validate_rank(dest, ctx.size, "destination")
        validate_tag(tag)
        if size < 0:
            raise MpiError(f"negative message size: {size}")
        del buf  # no registration concept: the Elan MMU translates on the fly
        state: _QState = ctx.impl_state
        state.tx_count += 1
        self._c_tx.inc()
        ctx.sends += 1
        ctx.bytes_sent += size
        nic = self._ranks[ctx.rank][1]
        proto = "tport-sync" if size > self.params.sync_threshold else "tport"
        span = self.sim.lifecycle.start(
            "send", ctx.rank, dest, tag, size, proto, self.sim.now
        )
        handle = nic.tx(
            ctx.cpu, ctx.rank, self._peer_nic(dest), dest, tag, size, span=span
        )
        req = Request(
            kind="send", peer=dest, tag=tag, size=size, done=handle.done,
            span=span,
        )
        # isend returns after issuing the command; give the command-post
        # time a chance to be charged in-order on this rank's CPU.
        yield self.sim.timeout(0.0)
        return req

    def irecv(
        self, ctx: RankContext, source: int, tag: int, size: int, buf: Any
    ) -> Generator[Event, Any, Request]:
        if source != ANY_SOURCE:
            validate_rank(source, ctx.size, "source")
        del buf
        state: _QState = ctx.impl_state
        state.rx_count += 1
        self._c_rx.inc()
        ctx.recvs += 1
        nic = self._ranks[ctx.rank][1]
        span = self.sim.lifecycle.start(
            "recv", ctx.rank, source, tag, size, "recv", self.sim.now
        )
        handle = nic.post_rx(ctx.cpu, ctx.rank, source, tag, size, span=span)
        req = Request(
            kind="recv", peer=source, tag=tag, size=size, done=handle.done,
            span=span,
        )
        req.impl_state = handle
        yield self.sim.timeout(0.0)
        return req

    def wait(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, None]:
        """Sleep on the completion event — no polling, no progress duty.

        The NIC delivers and completes regardless of what this host rank
        does in the meantime; waiting costs nothing but time.
        """
        status = yield request.done
        handle = request.impl_state
        if request.kind == "recv" and handle is not None:
            ctx.bytes_received += handle.matched_size
            request.status.source = handle.matched_source
            request.status.tag = handle.matched_tag
            request.status.size = handle.matched_size
        del status

    def test(
        self, ctx: RankContext, request: Request
    ) -> Generator[Event, Any, bool]:
        yield from ctx.cpu.busy(0.05, kind="mpi")  # read the event word
        if request.completed and request.kind == "recv":
            handle = request.impl_state
            if handle is not None and request.status.size < 0:
                request.status.source = handle.matched_source
                request.status.tag = handle.matched_tag
                request.status.size = handle.matched_size
        return request.completed

    # -- hardware collectives (QsNetII switch-assisted) -------------------------

    @property
    def hw_collectives(self) -> bool:
        """Whether switch-assisted barrier/broadcast are enabled."""
        return self.params.hw_collectives

    def _hw_slot(self, ctx: RankContext, comm: Communicator, kind: str):
        """The shared in-flight operation object for this rank's next
        ``kind`` collective on ``comm`` (all members resolve the same
        slot because collective calls are ordered)."""
        seqs = self._hw_seqs.setdefault((comm.context_id, kind), {})
        my_seq = seqs.get(ctx.rank, 0)
        seqs[ctx.rank] = my_seq + 1
        return (comm.context_id, kind, my_seq)

    def hw_barrier(
        self, ctx: RankContext, comm: Communicator
    ) -> Generator[Event, Any, None]:
        """Switch-tree barrier: completes a fixed latency after the last
        arrival, independent of group size within the chassis."""
        yield from ctx.cpu.busy(self.params.command_post, kind="mpi")
        key = self._hw_slot(ctx, comm, "barrier")
        bar = self._hw_barriers.get(key)
        if bar is None:
            bar = _HwBarrier(self.sim, comm.size)
            self._hw_barriers[key] = bar
        bar.arrived += 1
        if bar.arrived == bar.expected:
            del self._hw_barriers[key]
            self._c_hw_barriers.inc()
            self.sim.spawn(
                _succeed_after(self.sim, self.params.hw_barrier_latency, bar.done),
                name="elan.hwbar",
            )
        yield bar.done
        yield from ctx.cpu.busy(self.params.event_delivery, kind="mpi")

    def hw_bcast(
        self, ctx: RankContext, comm: Communicator, nbytes: int, root: int
    ) -> Generator[Event, Any, None]:
        """Switch-replicated broadcast: the payload crosses the root's
        uplink once and every member's downlink in parallel."""
        if nbytes < 0:
            raise MpiError(f"negative broadcast size: {nbytes}")
        # Arrival registration is atomic (no yields): the last arriver —
        # root or not — finds the root's parameters already recorded and
        # kicks off the replicated transfer.
        key = self._hw_slot(ctx, comm, "bcast")
        bar = self._hw_barriers.get(key)
        if bar is None:
            bar = _HwBarrier(self.sim, comm.size)
            self._hw_barriers[key] = bar
        if comm.rank_of(ctx.rank) == root:
            self._hw_pending_roots[key] = (ctx, nbytes)
        bar.arrived += 1
        if bar.arrived == bar.expected:
            root_ctx, size = self._hw_pending_roots.pop(key)
            del self._hw_barriers[key]
            self._c_hw_bcasts.inc()
            self.sim.spawn(
                self._hw_bcast_root(root_ctx, comm, size, bar.done),
                name="elan.hwbc",
            )
        yield from ctx.cpu.busy(self.params.command_post, kind="mpi")
        yield bar.done
        yield from ctx.cpu.busy(self.params.event_delivery, kind="mpi")

    def _hw_bcast_root(
        self, root_ctx: RankContext, comm: Communicator, nbytes: int, done: Event
    ) -> Generator[Event, Any, None]:
        root_nic = self._ranks[root_ctx.rank][1]
        # One pass out of the root host (PCI-X + uplink)...
        from ...sim import transfer

        self._hw_op_seq += 1
        op = self._hw_op_seq
        stages = [root_nic.node.pcix_stage()]
        stages.extend(
            root_nic.fabric.wire_stages(
                root_nic.node.node_id,
                (root_nic.node.node_id + 1) % max(2, root_nic.fabric.n_nodes),
            )[:1]
        )
        if stages:
            yield from transfer(
                self.sim,
                stages,
                nbytes,
                chunk=root_nic.chunk,
                key=("hwbc", op, "root"),
            )
        # ...then parallel delivery into every other member's host memory.
        deliveries: List[Event] = []
        per_dest = self.params.hw_bcast_per_dest
        for i, world_rank in enumerate(comm.world_ranks):
            if world_rank == root_ctx.rank:
                continue
            nic = self._ranks[world_rank][1]
            ev = Event(self.sim)
            deliveries.append(ev)
            self.sim.spawn(
                self._hw_deliver(nic, nbytes, i * per_dest, ev, ("hwbc", op, i)),
                name="elan.hwdlv",
            )
        if deliveries:
            yield self.sim.all_of(deliveries)
        done.succeed(self.sim.now)

    def _hw_deliver(
        self, nic: ElanNic, nbytes: int, stagger: float, ev: Event, key=None
    ) -> Generator[Event, Any, None]:
        from ...sim import transfer

        if stagger > 0.0:
            yield self.sim.timeout(stagger)
        stages = []
        wire = nic.fabric.wire_stages(
            (nic.node.node_id + 1) % max(2, nic.fabric.n_nodes),
            nic.node.node_id,
        )
        if wire:
            stages.append(wire[-1])  # the member's downlink
        stages.append(nic.node.pcix_stage())
        yield from transfer(self.sim, stages, nbytes, chunk=nic.chunk, key=key)
        ev.succeed(self.sim.now)

    # -- end-of-run invariants ---------------------------------------------------

    def check_invariants(self) -> list:
        """Conservation checks on a quiesced run (plain dicts; see
        :func:`repro.analysis.invariants.check_invariants`)."""
        problems = []
        if self._hw_barriers:
            problems.append(
                {
                    "name": "hw_barriers_drained",
                    "message": (
                        f"{len(self._hw_barriers)} hardware collective(s) "
                        "still awaiting arrivals at end of run"
                    ),
                    "details": {"keys": sorted(map(str, self._hw_barriers))},
                }
            )
        if self._hw_pending_roots:
            problems.append(
                {
                    "name": "hw_roots_drained",
                    "message": (
                        f"{len(self._hw_pending_roots)} broadcast root "
                        "record(s) never consumed at end of run"
                    ),
                    "details": {
                        "keys": sorted(map(str, self._hw_pending_roots))
                    },
                }
            )
        return problems

    # -- reporting ------------------------------------------------------------

    def finalize_stats(self, ctx: RankContext) -> dict:
        state: _QState = ctx.impl_state
        nic = self._ranks[ctx.rank][1]
        posted, unexpected = nic.queue_depths(ctx.rank)
        return {
            "tx_count": state.tx_count,
            "rx_count": state.rx_count,
            "nic_buffered_peak": nic.max_buffered_bytes,
            "posted_now": posted,
            "unexpected_now": unexpected,
        }
