"""Machine builder: nodes + fabric + NICs + MPI, ready to run programs.

:class:`Machine` assembles one complete simulated cluster for one of the
two technologies and runs MPI programs on it.  A machine is single-use —
build a fresh one per measurement run (the study layer does this, with a
distinct RNG seed per repetition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from ..errors import ConfigurationError
from ..fabric import CrossbarFabric, TwoLevelFabric
from ..topology import TopologySpec
from ..topology.base import Topology
from ..faults import FaultInjector, FaultPlan, validate_fault_targets
from ..hardware import Node, NodeSpec, POWEREDGE_1750
from ..networks.elan import ElanNic
from ..networks.ib import Hca
from ..networks.params import ELAN_4, IB_4X, ElanParams, IBParams
from ..sim import Simulator, Tracer
from ..telemetry import Telemetry
from ..telemetry.chrome import chrome_trace, write_chrome_trace
from ..telemetry.collect import snapshot
from .api import MpiRank
from .communicator import Communicator
from .context import RankContext
from .mvapich.impl import MvapichImpl
from .qmpi.impl import QMpiImpl

#: Identifiers accepted by :class:`Machine` and the study layer.
NETWORKS = ("ib", "elan")

#: Display names used in reports and figure legends.
NETWORK_LABELS = {"ib": "4X InfiniBand", "elan": "Quadrics Elan-4"}

ProgramFactory = Callable[[MpiRank], Generator[Any, Any, Any]]


@dataclass
class RunResult:
    """Outcome of one program run on one machine."""

    elapsed_us: float
    #: Per-rank program return values, indexed by world rank.
    values: List[Any]
    #: Per-rank start/end times (after the synchronizing barrier).
    rank_spans: List[tuple]
    #: Per-rank implementation statistics.
    impl_stats: List[dict] = field(default_factory=list)
    #: Flat telemetry snapshot (empty unless the machine was built with
    #: an enabled :class:`~repro.telemetry.Telemetry`).
    metrics: dict = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        """Elapsed wall time in seconds."""
        return self.elapsed_us / 1e6


class Machine:
    """One simulated cluster: ``n_nodes`` nodes, ``ppn`` ranks per node."""

    def __init__(
        self,
        network: str,
        n_nodes: int,
        ppn: int = 1,
        seed: int = 0,
        ib_params: IBParams = IB_4X,
        elan_params: ElanParams = ELAN_4,
        node_spec: NodeSpec = POWEREDGE_1750,
        fabric_radix: Optional[int] = None,
        topology: Optional[Any] = None,
        ib_progress_thread: bool = False,
        trace: Optional["Tracer"] = None,
        faults: Optional[FaultPlan] = None,
        telemetry: Optional[Telemetry] = None,
        sanitizer: bool = False,
        profiler: Optional[Any] = None,
    ) -> None:
        if network not in NETWORKS:
            raise ConfigurationError(
                f"unknown network {network!r}; expected one of {NETWORKS}"
            )
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if not 1 <= ppn <= node_spec.cpus:
            raise ConfigurationError(
                f"ppn={ppn} impossible on {node_spec.cpus}-CPU nodes"
            )
        self.network = network
        self.n_nodes = n_nodes
        self.ppn = ppn
        self.n_ranks = n_nodes * ppn
        #: Same-time race sanitizer, when requested (observation-only:
        #: enabling it never changes scheduling or results).
        self.sanitizer: Optional[Any] = None
        if sanitizer:
            from ..analysis import RaceSanitizer

            self.sanitizer = RaceSanitizer()
        self.sim = Simulator(
            seed=seed, trace=trace, telemetry=telemetry,
            sanitizer=self.sanitizer, profiler=profiler,
        )
        self.node_spec = node_spec
        self.ib_params = ib_params
        self.elan_params = elan_params
        self.fault_plan = faults

        net_params = ib_params if network == "ib" else elan_params
        if topology is not None and fabric_radix is not None:
            raise ConfigurationError(
                "pass either topology or fabric_radix, not both"
            )
        if topology is not None:
            # The general seam: any repro.topology fabric, declaratively.
            tspec = (
                topology
                if isinstance(topology, TopologySpec)
                else TopologySpec.from_dict(dict(topology))
            )
            self.topology = tspec
            self.fabric: Topology = tspec.build(
                self.sim, n_nodes, net_params.fabric
            )
        elif fabric_radix is not None:
            # Legacy what-if knob: a two-level fat tree of
            # ``fabric_radix``-port switches (extra hop latency, contended
            # inter-switch links).
            self.topology = TopologySpec(
                kind="fattree", radix=fabric_radix, levels=2
            )
            self.fabric = TwoLevelFabric(
                self.sim, n_nodes, net_params.fabric, fabric_radix
            )
        else:
            self.topology = TopologySpec()
            self.fabric = CrossbarFabric(self.sim, n_nodes, net_params.fabric)
        # An injector is attached only when the plan can actually fire;
        # a disabled plan leaves every model on its draw-free fast path,
        # keeping no-fault results bit-identical to a plan-less machine.
        # Plans that name fabric elements are resolved against the built
        # topology here — a typo'd target raises UnknownLinkError (a
        # ValueError) now instead of silently never firing — and the
        # hard-event schedule is armed as a daemon process.
        if faults is not None and faults.enabled:
            validate_fault_targets(faults, self.fabric)
            injector = FaultInjector(self.sim, faults)
            self.sim.faults = injector
            if injector.hard is not None:
                injector.hard.arm(self.sim, self.fabric)
        self.nodes: List[Node] = [
            Node(self.sim, i, node_spec) for i in range(n_nodes)
        ]
        if network == "ib":
            self.impl: Any = MvapichImpl(
                self.sim, ib_params, progress_thread=ib_progress_thread
            )
            self.nics: List[Any] = [
                Hca(self.sim, node, self.fabric, ib_params) for node in self.nodes
            ]
        else:
            self.impl = QMpiImpl(self.sim, elan_params)
            self.nics = [
                ElanNic(self.sim, node, self.fabric, elan_params)
                for node in self.nodes
            ]

        self.world = Communicator(list(range(self.n_ranks)), name="world")
        self.contexts: List[RankContext] = []
        self.apis: List[MpiRank] = []
        for rank in range(self.n_ranks):
            node = self.nodes[rank // ppn]  # block rank placement
            cpu = node.cpu_for_rank(rank % ppn)
            ctx = RankContext(
                self.sim, rank, self.n_ranks, node, cpu, self.nics[rank // ppn]
            )
            self.impl.register_rank(ctx, self.nics[rank // ppn])
            self.contexts.append(ctx)
            self.apis.append(MpiRank(ctx, self.impl, self.world))
        for ctx in self.contexts:
            ctx.neighbors = [
                other
                for other in self.contexts
                if other.node is ctx.node and other is not ctx
            ]
        self._used = False

    @property
    def label(self) -> str:
        """Display name of the interconnect."""
        return NETWORK_LABELS[self.network]

    def run(
        self,
        program: ProgramFactory,
        skip_init: bool = False,
        collect_stats: bool = False,
        max_events: Optional[int] = None,
        wall_limit_s: Optional[float] = None,
        check_invariants: bool = False,
    ) -> RunResult:
        """Run ``program`` on every rank; returns timing and values.

        The measured span starts after MPI_Init and a synchronizing
        barrier (as the real benchmarks do) and ends when the slowest
        rank's program returns.  ``max_events``/``wall_limit_s`` arm the
        kernel watchdog (see :meth:`repro.sim.Simulator.run`) so a hung
        program raises :class:`~repro.errors.WatchdogError` naming the
        blocked ranks instead of spinning forever.

        ``check_invariants=True`` runs the end-of-run conservation
        checks after the program finishes, raising
        :class:`~repro.errors.InvariantViolation` on residue (held
        resource slots, unbalanced eager credits, parked records...).
        Off by default and purely post-hoc: it never changes results.
        """
        if self._used:
            raise ConfigurationError(
                "Machine is single-use; build a new one per run"
            )
        self._used = True
        n = self.n_ranks
        values: List[Any] = [None] * n
        spans: List[tuple] = [(0.0, 0.0)] * n

        def runner(rank: int) -> Generator[Any, Any, None]:
            api = self.apis[rank]
            if not skip_init:
                yield from self.impl.init(api.ctx)
            yield from api.barrier()
            start = self.sim.now
            values[rank] = yield from program(api)
            spans[rank] = (start, self.sim.now)

        for rank in range(n):
            self.sim.spawn(runner(rank), name=f"rank{rank}")
        self.sim.run_all(max_events=max_events, wall_limit_s=wall_limit_s)
        if self.sanitizer is not None:
            self.sanitizer.finish()
        if check_invariants:
            self.verify_invariants()

        start = max(s for s, _ in spans)
        end = max(e for _, e in spans)
        stats = (
            [self.impl.finalize_stats(ctx) for ctx in self.contexts]
            if collect_stats
            else []
        )
        return RunResult(
            elapsed_us=end - start,
            values=values,
            rank_spans=spans,
            impl_stats=stats,
            metrics=self.metrics() if self.sim.telemetry.enabled else {},
        )

    # -- analysis ------------------------------------------------------------

    def check_invariants(self) -> list:
        """End-of-run conservation checks; returns the violation roster.

        Empty list means the run quiesced cleanly: no held resource
        slots, no undelivered records, credits balanced, registration
        caches consistent, every lifecycle span finished.
        """
        from ..analysis import check_invariants

        return check_invariants(self)

    def verify_invariants(self) -> None:
        """Raise :class:`~repro.errors.InvariantViolation` on residue."""
        from ..analysis import verify_invariants

        verify_invariants(self)

    # -- telemetry -----------------------------------------------------------

    def metrics(self) -> dict:
        """Flat, sorted snapshot of every metric and resource statistic."""
        return snapshot(self.sim)

    def chrome_trace(self, label: str = "") -> dict:
        """The run as a Chrome ``trace_event`` document (JSON-ready)."""
        return chrome_trace(
            self.sim, tracer=self.sim.trace, label=label or self.label
        )

    def write_chrome_trace(self, path, label: str = "") -> dict:
        """Write :meth:`chrome_trace` to ``path``; returns the document."""
        return write_chrome_trace(
            path, self.sim, tracer=self.sim.trace, label=label or self.label
        )

    def lifecycle_spans(self) -> List[dict]:
        """All recorded message spans as JSON-ready dicts (start order)."""
        return self.sim.telemetry.lifecycle.to_dicts()

    def blame(self) -> dict:
        """Critical-path blame table over the run's message spans.

        Empty-path shape (``total_us`` 0) when lifecycle collection was
        off or no message completed.
        """
        from ..telemetry.critical_path import blame_of_spans

        return blame_of_spans(self.sim.telemetry.lifecycle.spans)

    def series(self, dt: float = 0.0, points: int = 200) -> dict:
        """Every sampled channel resampled onto a common virtual-time grid."""
        bank = self.sim.telemetry.series
        if not bank.enabled:
            return {}
        return bank.sampled(self.sim.now, dt=dt, points=points)

    def memory_footprint_per_process(self) -> int:
        """Network buffer bytes one process dedicates in this job size."""
        return self.nics[0].memory_footprint(self.n_ranks)


def build_machine(network: str, n_nodes: int, ppn: int = 1, **kwargs) -> Machine:
    """Convenience constructor mirroring :class:`Machine`."""
    return Machine(network, n_nodes, ppn=ppn, **kwargs)
