"""The per-rank MPI facade that simulated programs code against.

A program is a generator function taking one :class:`MpiRank`:

.. code-block:: python

    def pingpong(mpi):
        if mpi.rank == 0:
            yield from mpi.send(dest=1, size=1024)
            yield from mpi.recv(source=1, size=1024)
        else:
            yield from mpi.recv(source=0, size=1024)
            yield from mpi.send(dest=0, size=1024)

Every method is a generator (``yield from`` it); sizes are bytes and the
clock is the simulation clock (``mpi.now``).  Communication defaults to
the world communicator; pass ``comm=`` to address a subgroup by its group
ranks.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..errors import MpiError
from .collectives import algorithms as _coll
from .communicator import Communicator
from .context import MpiImpl, RankContext
from .matching import ANY_SOURCE, ANY_TAG
from .request import Request, Status


class MpiRank:
    """One process's view of the message-passing machine."""

    def __init__(
        self, ctx: RankContext, impl: MpiImpl, world: Communicator
    ) -> None:
        self.ctx = ctx
        self.impl = impl
        self.world = world

    # -- identity -----------------------------------------------------------

    @property
    def rank(self) -> int:
        """World rank of this process."""
        return self.ctx.rank

    @property
    def size(self) -> int:
        """World size."""
        return self.ctx.size

    @property
    def now(self) -> float:
        """Current simulation time (us)."""
        return self.ctx.sim.now

    def comm_rank(self, comm: Optional[Communicator]) -> int:
        """This process's group rank in ``comm`` (world rank if None)."""
        if comm is None:
            return self.rank
        return comm.rank_of(self.rank)

    def _world_peer(self, peer: int, comm: Optional[Communicator]) -> int:
        if comm is None:
            return peer
        if peer == ANY_SOURCE:
            return ANY_SOURCE
        return comm.world_rank(peer)

    # -- point-to-point ---------------------------------------------------------

    def isend(
        self,
        dest: int,
        size: int,
        tag: int = 0,
        buf: Any = None,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, Request]:
        """Start a non-blocking send of ``size`` bytes."""
        req = yield from self.impl.isend(
            self.ctx, self._world_peer(dest, comm), size, tag, buf
        )
        return req

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: int = 0,
        buf: Any = None,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, Request]:
        """Start a non-blocking receive into a ``size``-byte buffer."""
        req = yield from self.impl.irecv(
            self.ctx, self._world_peer(source, comm), tag, size, buf
        )
        return req

    def send(
        self,
        dest: int,
        size: int,
        tag: int = 0,
        buf: Any = None,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, None]:
        """Blocking send (isend + wait)."""
        req = yield from self.isend(dest, size, tag=tag, buf=buf, comm=comm)
        yield from self.wait(req)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        size: int = 0,
        buf: Any = None,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, Status]:
        """Blocking receive; returns the completion status."""
        req = yield from self.irecv(source, tag, size, buf=buf, comm=comm)
        yield from self.wait(req)
        return req.status

    def wait(self, request: Request) -> Generator[Any, Any, None]:
        """Block until one request completes (progressing as needed)."""
        yield from self.impl.wait(self.ctx, request)

    def waitall(self, requests: List[Request]) -> Generator[Any, Any, None]:
        """Block until every request completes."""
        yield from self.impl.waitall(self.ctx, list(requests))

    def test(self, request: Request) -> Generator[Any, Any, bool]:
        """Non-blocking completion check with one progress poke."""
        done = yield from self.impl.test(self.ctx, request)
        return done

    def sendrecv(
        self,
        dest: int,
        send_size: int,
        source: int,
        recv_size: int,
        tag: int = 0,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, Status]:
        """Simultaneous send and receive (deadlock-free exchange)."""
        rreq = yield from self.irecv(source, tag, recv_size, comm=comm)
        sreq = yield from self.isend(dest, send_size, tag=tag, comm=comm)
        yield from self.wait(sreq)
        yield from self.wait(rreq)
        return rreq.status

    # -- compute ------------------------------------------------------------------

    def compute(self, duration_us: float) -> Generator[Any, Any, None]:
        """Application compute: occupies this rank's CPU, no MPI progress.

        On the host-based implementation this is where accumulated cache
        pollution from MPI activity is paid back as slowdown.
        """
        yield from self.impl.compute(self.ctx, duration_us)

    # -- collectives -----------------------------------------------------------------

    def _comm(self, comm: Optional[Communicator]) -> Communicator:
        c = comm if comm is not None else self.world
        if not c.contains(self.rank):
            raise MpiError(
                f"rank {self.rank} called a collective on {c.name!r} "
                "without being a member"
            )
        return c

    def barrier(
        self, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Barrier over ``comm``.

        Uses the switch-assisted hardware barrier when the implementation
        offers one (Elan-4 with ``hw_collectives`` enabled), else the
        dissemination algorithm over point-to-point messages.
        """
        c = self._comm(comm)
        if getattr(self.impl, "hw_collectives", False) and c.size > 1:
            yield from self.impl.hw_barrier(self.ctx, c)
        else:
            yield from _coll.barrier(self, c)

    def bcast(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Broadcast of ``nbytes`` from group rank ``root``.

        Switch-replicated when hardware collectives are enabled, else the
        binomial tree.
        """
        c = self._comm(comm)
        if getattr(self.impl, "hw_collectives", False) and c.size > 1:
            yield from self.impl.hw_bcast(self.ctx, c, nbytes, root)
        else:
            yield from _coll.bcast(self, c, nbytes, root)

    def reduce(
        self, nbytes: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Binomial reduction of ``nbytes`` to group rank ``root``."""
        yield from _coll.reduce(self, self._comm(comm), nbytes, root)

    def allreduce(
        self, nbytes: int, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Recursive-doubling allreduce of ``nbytes``."""
        yield from _coll.allreduce(self, self._comm(comm), nbytes)

    def allgather(
        self, nbytes_each: int, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Ring allgather contributing ``nbytes_each`` per process."""
        yield from _coll.allgather(self, self._comm(comm), nbytes_each)

    def alltoall(
        self, nbytes_each: int, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Pairwise alltoall of ``nbytes_each`` per peer."""
        yield from _coll.alltoall(self, self._comm(comm), nbytes_each)

    def gather(
        self, nbytes_each: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Binomial gather of ``nbytes_each`` per process to ``root``."""
        yield from _coll.gather(self, self._comm(comm), nbytes_each, root)

    def scatter(
        self, nbytes_each: int, root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, None]:
        """Binomial scatter of ``nbytes_each`` per process from ``root``."""
        yield from _coll.scatter(self, self._comm(comm), nbytes_each, root)

    def alltoallv(
        self,
        send_sizes: List[int],
        recv_sizes: List[int],
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, None]:
        """Pairwise alltoallv with per-peer byte counts."""
        yield from _coll.alltoallv(
            self, self._comm(comm), send_sizes, recv_sizes
        )
