"""repro: a simulation reproduction of Brightwell, Doerfler & Underwood,
"A Comparison of 4X InfiniBand and Quadrics Elan-4 Technologies"
(CLUSTER 2004).

The package models both interconnects — the connection-oriented,
host-progressed 4X InfiniBand/MVAPICH stack and the connectionless,
NIC-offloaded Quadrics Elan-4/Tports stack — on identical simulated
dual-Xeon/PCI-X nodes, and regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import Machine

    def pingpong(mpi):
        for _ in range(100):
            if mpi.rank == 0:
                yield from mpi.send(dest=1, size=8192)
                yield from mpi.recv(source=1, size=8192)
            else:
                yield from mpi.recv(source=0, size=8192)
                yield from mpi.send(dest=0, size=8192)

    for network in ("ib", "elan"):
        machine = Machine(network, n_nodes=2)
        print(network, machine.run(pingpong).elapsed_us)

See ``repro.core.figures.EXPERIMENTS`` for the per-figure generators and
the ``repro-report`` console script for the full reproduction.
"""

from .apps import (
    CG_CLASS_A,
    LJS,
    MEMBRANE,
    SWEEP150,
    cg_program,
    lammps_program,
    sweep3d_program,
)
from .campaign import (
    CampaignEngine,
    CampaignResult,
    CampaignSpec,
    RunSpec,
    run_study,
)
from .core import (
    EXPERIMENTS,
    FigureData,
    ScalingStudy,
    StudyResult,
    check_all,
)
from .cost import cost_curves, elan4_cost, ib96_cost, ib_24_288_cost, system_cost_gap
from .faults import FaultInjector, FaultPlan, root_fault
from .microbench import run_beff, run_pingpong, run_streaming
from .mpi import ANY_SOURCE, ANY_TAG, Communicator, Machine, MpiRank, RunResult
from .networks.params import ELAN_4, IB_4X, ElanParams, IBParams
from .telemetry import MetricsRegistry, Telemetry
from .version import PAPER, __version__

__all__ = [
    "__version__",
    "PAPER",
    "Machine",
    "RunResult",
    "MpiRank",
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "IBParams",
    "ElanParams",
    "IB_4X",
    "ELAN_4",
    "FaultPlan",
    "FaultInjector",
    "root_fault",
    "Telemetry",
    "MetricsRegistry",
    "run_pingpong",
    "run_streaming",
    "run_beff",
    "ScalingStudy",
    "StudyResult",
    "CampaignSpec",
    "RunSpec",
    "CampaignEngine",
    "CampaignResult",
    "run_study",
    "EXPERIMENTS",
    "FigureData",
    "check_all",
    "lammps_program",
    "sweep3d_program",
    "cg_program",
    "LJS",
    "MEMBRANE",
    "SWEEP150",
    "CG_CLASS_A",
    "cost_curves",
    "elan4_cost",
    "ib96_cost",
    "ib_24_288_cost",
    "system_cost_gap",
]
